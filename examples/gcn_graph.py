#!/usr/bin/env python3
"""Two-layer GCN as a :class:`~repro.graph.ModelGraph`.

A graph convolution layer is ``H' = act((A_hat @ H) W)``: one SpMM with
the renormalized adjacency ``A_hat`` (Kipf & Welling) followed by a
dense feature projection.  That maps directly onto the model-graph
tier — ``A_hat`` is registered **once** as a serving matrix and both
layers reference it by name (so concurrent requests' layer SpMMs batch
together per matrix), while the projection + activation ride along as
each node's ``transform``.

Adjacency sparsity is scalar, not vector-shaped, so this sits outside
Jigsaw's target regime (see ``examples/gnn_aggregation.py``) — the
serving route chain still executes it through its fallback routes,
which is the point: the graph tier composes with whatever route the
matrix supports.

Run:  python examples/gcn_graph.py
"""

import tempfile
import time

import numpy as np

from repro.graph import GraphExecutor, ModelGraph
from repro.serve import BatchExecutor, PlanRegistry

N_NODES = 512
FEATURES = (32, 64, 16)  # input -> hidden -> output feature widths
REQUESTS = 8


def normalized_adjacency(n: int, rng: np.random.Generator) -> np.ndarray:
    """Kipf-Welling renormalized adjacency: D^-1/2 (A + I) D^-1/2."""
    a = (rng.random((n, n)) < 0.02).astype(np.float32)
    a = np.maximum(a, a.T)  # undirected
    np.fill_diagonal(a, 1.0)  # self loops
    d_inv_sqrt = 1.0 / np.sqrt(a.sum(axis=1))
    return (a * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]).astype(np.float16)


def main() -> None:
    rng = np.random.default_rng(7)
    a_hat = normalized_adjacency(N_NODES, rng)
    w0 = (rng.standard_normal(FEATURES[:2]) * 0.1).astype(np.float16)
    w1 = (rng.standard_normal(FEATURES[1:]) * 0.1).astype(np.float16)
    print(
        f"graph: {N_NODES} nodes, adjacency "
        f"{1 - np.count_nonzero(a_hat) / a_hat.size:.1%} sparse; "
        f"features {FEATURES[0]} -> {FEATURES[1]} -> {FEATURES[2]}"
    )

    # Layer nodes: the SpMM matrix is the shared adjacency; projection
    # and relu are the node's transform (applied after the SpMM).
    graph = ModelGraph(input_cast="float16")
    graph.add_layer(
        "gc0",
        weight=a_hat,
        matrix="adj",
        transform=lambda p: np.maximum((p @ w0).astype(np.float16), np.float16(0)),
    )
    graph.add_layer(
        "gc1",
        matrix="adj",
        inputs="gc0",
        transform=lambda p: (p @ w1).astype(np.float16),
    )

    registry = PlanRegistry(cache_dir=tempfile.mkdtemp(prefix="jigsaw-gcn-"))
    graph.register(registry)
    registry.warm()

    panels = [
        rng.standard_normal((N_NODES, FEATURES[0])).astype(np.float16)
        for _ in range(REQUESTS)
    ]
    # v3 pins the kernel to BLOCK_TILE=64: both GCN layers share the
    # adjacency matrix but produce different panel widths (32 and 64
    # features), so their SpMMs batch together into mixed-width groups —
    # a fixed-tile kernel keeps batched execution bit-identical to the
    # sequential reference no matter how the widths interleave, where
    # v4's per-launch autotune could pick a different BLOCK_TILE for the
    # concatenated panel than for a singleton.
    with BatchExecutor(registry, max_batch=REQUESTS) as executor:
        gx = GraphExecutor(graph, executor, version="v3")
        t0 = time.perf_counter()
        sequential = gx.run_sequential(panels)
        seq_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        pipelined = gx.run(panels)
        pip_s = time.perf_counter() - t0

    # Pipelined execution changes scheduling, never results.
    assert all(
        np.array_equal(s.output, p.output) for s, p in zip(sequential, pipelined)
    )
    # And the whole DAG matches an fp32 dense reference within fp16 slack.
    h0 = panels[0].astype(np.float32)
    ref = np.maximum(a_hat.astype(np.float32) @ h0 @ w0.astype(np.float32), 0.0)
    ref = a_hat.astype(np.float32) @ ref @ w1.astype(np.float32)
    assert pipelined[0].output is not None
    assert np.allclose(pipelined[0].output.astype(np.float32), ref, rtol=1e-2, atol=0.1)

    print(f"served routes: {pipelined[0].routes}")
    print(
        f"{REQUESTS} requests: sequential {seq_s * 1e3:.1f} ms, "
        f"pipelined {pip_s * 1e3:.1f} ms ({seq_s / pip_s:.2f}x) — "
        f"outputs bit-identical"
    )


if __name__ == "__main__":
    main()
