#!/usr/bin/env python3
"""Dynamic sparse attention with SpTC — the DFSS scenario.

The paper cites DFSS [Chen et al., PPoPP'23] as prior SpTC work that
co-designs pruning for the 2:4 pattern: attention scores are pruned
*dynamically*, per forward pass, keeping the 2 largest of every 4.  This
example contrasts the two SpTC routes on attention:

* **DFSS route**: prune scores to 2:4 (``decompose_2to4`` keeps the top
  2 per quad) and feed the conforming half to a cuSparseLt-style kernel
  — no reorder needed, but half the scores are simply dropped;
* **Jigsaw route**: threshold-prune the scores (keep the top ~25% —
  unstructured!), and let the multi-granularity reorder make the result
  SpTC-compatible without a co-designed pattern.

Both compute ``scores @ V``; the example reports what each keeps and
what it costs.

Run:  python examples/sparse_attention.py
"""

import numpy as np

from repro.baselines import cublas_hgemm, cusparselt_spmm, sparta_spmm
from repro.core import JigsawPlan

SEQ = 1024
HEAD_DIM = 64
KEEP_FRACTION = 0.25


def softmax(x: np.ndarray) -> np.ndarray:
    e = np.exp(x - x.max(axis=-1, keepdims=True))
    return e / e.sum(axis=-1, keepdims=True)


def main() -> None:
    rng = np.random.default_rng(19)
    q = rng.standard_normal((SEQ, HEAD_DIM)).astype(np.float16) * 0.3
    k = rng.standard_normal((SEQ, HEAD_DIM)).astype(np.float16) * 0.3
    v = rng.standard_normal((SEQ, HEAD_DIM)).astype(np.float16)

    scores = softmax(
        (q.astype(np.float32) @ k.astype(np.float32).T) / np.sqrt(HEAD_DIM)
    ).astype(np.float16)
    dense_out = scores.astype(np.float32) @ v.astype(np.float32)
    cu = cublas_hgemm(scores, v, want_output=False).profile.duration_us
    print(f"attention: seq={SEQ}, head_dim={HEAD_DIM}")
    print(f"dense scores @ V on cuBLAS: {cu:.2f} us\n")

    # --- DFSS route: structural 2:4 top-2-of-4 pruning -----------------------
    from repro.baselines import decompose_2to4

    kept24, dropped = decompose_2to4(scores)
    mass24 = np.abs(kept24).sum() / np.abs(scores).sum()
    r24 = cusparselt_spmm(kept24, v, want_output=False, assume_conformant=True)
    out24 = kept24.astype(np.float32) @ v.astype(np.float32)
    err24 = np.abs(out24 - dense_out).max()
    print(
        f"DFSS-style 2:4 : keeps 50% of entries ({mass24:.1%} of attention mass), "
        f"{r24.profile.duration_us:.2f} us, max |err| vs dense {err24:.4f}"
    )

    # --- Jigsaw route: unstructured top-k threshold pruning -------------------
    thresh = np.quantile(scores.astype(np.float32), 1 - KEEP_FRACTION)
    pruned = np.where(scores >= thresh, scores, np.float16(0))
    mass = np.abs(pruned).sum() / np.abs(scores).sum()
    plan = JigsawPlan(pruned)
    rj = plan.run(v)
    outj = pruned.astype(np.float32) @ v.astype(np.float32)
    np.testing.assert_allclose(rj.c, outj, rtol=1e-2, atol=1e-2)
    errj = np.abs(outj - dense_out).max()
    print(
        f"Jigsaw top-25% : keeps 25% of entries ({mass:.1%} of attention mass), "
        f"{rj.profile.duration_us:.2f} us, max |err| vs dense {errj:.4f}"
    )
    print(f"                 reorder success: {plan.reorder_success}")

    # --- SparTA route on the same unstructured scores -------------------------
    rs = sparta_spmm(pruned, v, want_output=False)
    print(f"SparTA (split) : same 25% kept, {rs.profile.duration_us:.2f} us")

    print(
        "\nTakeaway: the co-designed 2:4 route must keep a rigid half of "
        "every quad,\nwhile Jigsaw accepts whatever the accuracy-driven "
        "pruning keeps and reorders it\nonto the SpTC — the paper's core "
        "argument, on a dynamic-attention workload."
    )


if __name__ == "__main__":
    main()
