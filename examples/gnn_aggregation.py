#!/usr/bin/env python3
"""GNN feature aggregation — where Jigsaw's assumptions stop holding.

The paper scopes Jigsaw to DL pruning sparsity (80-98%, vector-shaped)
and notes that scientific-computing SpMM lives elsewhere (Section 5).
Graph aggregation ``A @ X`` (A = adjacency, X = node features) is the
boundary case: ~99.5% sparse, scalar (no vector structure), heavy-tailed
degrees.  This example runs it anyway and reports *why* the regime is
wrong for an SpTC-reorder approach even when the simulated Duration
still looks fine:

* SpTC operand utilization collapses (stored 16x8 value blocks are
  almost entirely explicit zeros);
* the one-time reorder is no longer "light preprocessing" relative to
  the microsecond-scale kernels it enables;
* load balance is driven by the degree tail, which favours
  row-scheduling designs (Sputnik) over tile-scheduling ones.

Run:  python examples/gnn_aggregation.py
"""

import time

import numpy as np

from repro.baselines import cublas_hgemm, cusparse_spmm, sputnik_spmm
from repro.baselines.row_swizzle import imbalance
from repro.core import JigsawPlan

N_NODES = 1024
FEATURES = 64


def power_law_adjacency(n: int, rng: np.random.Generator) -> np.ndarray:
    deg = np.minimum((rng.pareto(1.2, n) * 6).astype(int) + 1, n // 8)
    a = np.zeros((n, n), dtype=np.float16)
    for i, d in enumerate(deg):
        a[i, rng.choice(n, size=d, replace=False)] = 1.0
    return a


def main() -> None:
    rng = np.random.default_rng(23)
    a = power_law_adjacency(N_NODES, rng)
    x = rng.standard_normal((N_NODES, FEATURES)).astype(np.float16)
    sparsity = 1 - np.count_nonzero(a) / a.size
    nnz = int(np.count_nonzero(a))
    print(f"graph: {N_NODES} nodes, {nnz} edges, {sparsity:.2%} sparse (scalar)")

    t0 = time.time()
    plan = JigsawPlan(a, block_tiles=(16,))
    jm = plan.format_for(16)
    prep_s = time.time() - t0
    jig = plan.run(x, want_output=False)

    # SpTC utilization: true nonzeros per stored compressed slot.
    stored = sum(s.values.size for s in jm.slabs)
    utilization = nnz / max(1, stored)
    print(f"\nJigsaw : {jig.profile.duration_us:6.2f} us simulated "
          f"(zero-column skip {jm.reorder.skipped_column_fraction:.0%})")
    print(f"         but SpTC operand utilization = {utilization:.1%} "
          f"(DL-regime workloads sit near 50%)")
    print(f"         and preprocessing took {prep_s:.1f} s of host time for "
          f"{jig.profile.duration_us:.1f} us kernels")

    for name, fn in (("Sputnik", sputnik_spmm), ("cuSPARSE", cusparse_spmm)):
        res = fn(a, x, want_output=False)
        print(f"{name:>7}: {res.profile.duration_us:6.2f} us simulated, "
              f"zero preprocessing")
    cu = cublas_hgemm(a, x, want_output=False)
    print(f" cuBLAS: {cu.profile.duration_us:6.2f} us (dense; the wrong tool here)")

    skew = imbalance(np.count_nonzero(a, axis=1), rows_per_block=4, swizzled=False)
    balanced = imbalance(np.count_nonzero(a, axis=1), rows_per_block=4, swizzled=True)
    print(f"\ndegree-tail imbalance: contiguous blocks {skew:.1f}x the mean; "
          f"row swizzle brings it to {balanced:.1f}x")
    print(
        "\nTakeaway: at graph sparsity the SpTC format stores mostly explicit\n"
        "zeros and the reorder stops being 'light' — the paper's scoping of\n"
        "Jigsaw to DL pruning sparsity (Sections 1 and 5) is the right call."
    )

    # Correctness still holds everywhere, of course.
    out = plan.run(x)
    ref = a.astype(np.float32) @ x.astype(np.float32)
    assert np.allclose(out.c, ref, rtol=1e-2, atol=0.5)


if __name__ == "__main__":
    main()
