#!/usr/bin/env python3
"""Offline-to-online deployment pipeline.

A production flow for serving a pruned model with Jigsaw:

1. **offline** — read the layer's sparsity structure (DLMC ``.smtx``),
   expand to vector sparsity, run the one-time reorder, pick the best
   BLOCK_TILE from a tuning table, and persist the compressed artifact;
2. **online** — load the artifact (integrity-validated), and serve
   SpMMs without ever touching the reorder again.

Run:  python examples/deployment_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    JigsawMatrix,
    TileConfig,
    TuningTable,
    load_jigsaw,
    save_jigsaw,
)
from repro.core.kernels import V4, run_jigsaw_kernel
from repro.data import write_smtx, load_smtx_as_vector_sparse


def offline(workdir: Path) -> tuple[Path, int]:
    """Preprocess: structure file -> tuned, compressed artifact."""
    rng = np.random.default_rng(77)

    # In production the .smtx comes from the pruning toolchain; here we
    # fabricate one with DLMC-like structure.
    base = (rng.random((64, 512)) >= 0.92).astype(np.float16)
    smtx_path = workdir / "layer.smtx"
    write_smtx(base, smtx_path)
    print(f"[offline] structure file: {smtx_path.name} "
          f"({int(base.sum())} nonzero vectors)")

    a = load_smtx_as_vector_sparse(smtx_path, v=8, rng=rng)
    print(f"[offline] expanded to vector sparsity: {a.shape}, "
          f"{1 - np.count_nonzero(a) / a.size:.0%} sparse")

    table = TuningTable()
    best_bt = table.best_block_tile(a, n=1024, v_hint=8)
    print(f"[offline] tuning table picked BLOCK_TILE={best_bt}")

    jm = JigsawMatrix.build(a, TileConfig(block_tile=best_bt))
    print(f"[offline] reorder success: {jm.reorder_success}, "
          f"skipped columns: {jm.reorder.skipped_column_fraction:.0%}")

    artifact = workdir / "layer.jigsaw.npz"
    save_jigsaw(jm, artifact)
    kb = artifact.stat().st_size / 1024
    print(f"[offline] artifact: {artifact.name} ({kb:.0f} KiB on disk, "
          f"{jm.storage_bytes()['total'] / 1024:.0f} KiB logical, "
          f"dense would be {jm.dense_bytes() / 1024:.0f} KiB)")
    return artifact, best_bt


def online(artifact: Path) -> None:
    """Serve: load the validated artifact and run inference SpMMs."""
    jm = load_jigsaw(artifact)  # validates invariants before returning
    print(f"\n[online] loaded + validated artifact: shape {jm.shape}, "
          f"BLOCK_TILE={jm.config.block_tile}")

    rng = np.random.default_rng(5)
    for batch in (128, 512):
        x = rng.standard_normal((jm.shape[1], batch)).astype(np.float16)
        res = run_jigsaw_kernel(jm, x, V4)
        ref = jm.to_dense().astype(np.float32) @ x.astype(np.float32)
        assert np.allclose(res.c, ref, rtol=1e-3, atol=1e-1)
        print(f"[online] batch {batch:>4}: {res.profile.duration_us:6.2f} us "
              f"({res.profile.bound}-bound), output verified")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        artifact, _ = offline(Path(tmp))
        online(artifact)
    print("\npipeline complete: reorder ran exactly once, serving ran twice.")


if __name__ == "__main__":
    main()
