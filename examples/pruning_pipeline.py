#!/usr/bin/env python3
"""Pruning-method comparison: what sparsity structure buys you.

The paper's premise (Section 1): among pruning granularities, 1-D vector
pruning trades accuracy against *exploitable* structure best.  This
example prunes the same dense layer three ways at equal sparsity —
element-wise magnitude, vector (v=4), vector (v=8) — and shows what each
structure means downstream:

* how many all-zero columns Jigsaw's BLOCK_TILE reorder can skip,
* whether the multi-granularity reorder succeeds without K growth,
* the end-to-end simulated speedup over cuBLAS.

Run:  python examples/pruning_pipeline.py
"""

import numpy as np

from repro.baselines import cublas_hgemm
from repro.core import JigsawPlan
from repro.data import magnitude_prune, vector_prune

M = K = 1024
N = 1024
SPARSITY = 0.90


def main() -> None:
    rng = np.random.default_rng(3)
    dense = (rng.standard_normal((M, K)) * 0.02).astype(np.float16)
    b = rng.standard_normal((K, N)).astype(np.float16)

    variants = {
        "magnitude (element)": magnitude_prune(dense, SPARSITY).astype(np.float16),
        "vector v=4": vector_prune(dense, v=4, sparsity=SPARSITY).astype(np.float16),
        "vector v=8": vector_prune(dense, v=8, sparsity=SPARSITY).astype(np.float16),
    }

    cub = cublas_hgemm(dense, b, want_output=False).profile.duration_us
    print(f"layer {M}x{K}, target sparsity {SPARSITY:.0%}, N={N}")
    print(f"dense cuBLAS reference: {cub:.2f} us\n")
    print(f"{'pruning':>20} {'zero-col skip':>14} {'reorder ok':>10} {'jigsaw us':>10} {'speedup':>8}")
    for name, pruned in variants.items():
        plan = JigsawPlan(pruned)
        jm = plan.format_for(64)
        res = plan.run(b, want_output=False)
        ref = pruned.astype(np.float32) @ b.astype(np.float32)
        out = plan.run(b)
        assert np.allclose(out.c, ref, rtol=1e-3, atol=1e-1)
        print(
            f"{name:>20} {jm.reorder.skipped_column_fraction:>13.1%} "
            f"{str(plan.reorder_success):>10} {res.profile.duration_us:>10.2f} "
            f"{cub / res.profile.duration_us:>7.2f}x"
        )

    print(
        "\nVector pruning concentrates zeros into whole slab columns, which"
        "\nis exactly the structure the BLOCK_TILE reorder skips — the wider"
        "\nthe vector, the more work disappears before SpTC even runs."
    )


if __name__ == "__main__":
    main()
