#!/usr/bin/env python3
"""Head-to-head comparison of every SpMM system on one workload.

Runs Jigsaw and all five baselines of the paper's Figure 10 on a single
vector-sparse problem and prints Durations, speedups, and the
Nsight-style counters that explain *why* each system lands where it
does (bank conflicts, scoreboard stalls, instruction counts).

Run:  python examples/system_comparison.py [sparsity] [v]
e.g.  python examples/system_comparison.py 0.95 8
"""

import sys

import numpy as np

from repro.baselines import (
    clasp_spmm,
    cublas_hgemm,
    magicube_spmm,
    sparta_spmm,
    sputnik_spmm,
)
from repro.core import JigsawPlan
from repro.data import expand_to_vector_sparse


def main() -> None:
    sparsity = float(sys.argv[1]) if len(sys.argv) > 1 else 0.95
    v = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    m = k = n = 1024

    rng = np.random.default_rng(2024)
    base = rng.random((m // v, k)) >= sparsity
    a = expand_to_vector_sparse(base, v, rng)
    b = rng.standard_normal((k, n)).astype(np.float16)
    ref = a.astype(np.float32) @ b.astype(np.float32)

    print(f"workload: {m}x{k}x{n}, sparsity {sparsity:.0%}, v={v}\n")

    results = {}
    results["cublas"] = cublas_hgemm(a, b)
    results["jigsaw"] = JigsawPlan(a).run(b)
    results["clasp"] = clasp_spmm(a, b)
    results["magicube"] = magicube_spmm(a, b, v=v)
    results["sputnik"] = sputnik_spmm(a, b)
    results["sparta"] = sparta_spmm(a, b)

    # Every system computes the same product.
    for name, res in results.items():
        assert np.allclose(res.c, ref, rtol=1e-2, atol=0.5), name

    cu = results["cublas"].profile.duration_us
    print(
        f"{'system':>9} {'us':>9} {'vs cuBLAS':>10} {'bound':>8} "
        f"{'conflicts':>10} {'long_sb':>8} {'instr':>10}"
    )
    for name, res in sorted(results.items(), key=lambda kv: kv[1].profile.duration_us):
        p = res.profile
        print(
            f"{name:>9} {p.duration_us:9.2f} {cu / p.duration_us:9.2f}x "
            f"{p.bound:>8} {p.smem_bank_conflicts:>10} "
            f"{p.warp_long_scoreboard:8.2f} {p.total_instructions:10.0f}"
        )

    jig = results["jigsaw"].profile
    print(f"\nwinner: {min(results, key=lambda s: results[s].profile.duration_us)}")
    print(f"jigsaw kernel: {jig.kernel_name} ({jig.grid_blocks} blocks)")


if __name__ == "__main__":
    main()
