"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; ``python setup.py develop`` (or ``pip install -e . 
--no-build-isolation``) uses this shim instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
