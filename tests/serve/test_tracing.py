"""Executor tracing: one root span per request, children consistent with
the request's own :class:`RequestStats` timings, and zero cost disarmed."""

import numpy as np
import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    set_metrics,
    validate_span_records,
)
from repro.serve import BatchExecutor, PlanRegistry, SpmmRequest
from tests.conftest import random_vector_sparse


@pytest.fixture()
def registry(rng, tmp_path):
    reg = PlanRegistry(cache_dir=tmp_path)
    reg.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    reg.register("w1", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    return reg


@pytest.fixture()
def metrics():
    """Isolate the process-global metrics registry per test."""
    mine = MetricsRegistry()
    prev = set_metrics(mine)
    yield mine
    set_metrics(prev)


def _panel(rng, k=128, n=16):
    return rng.standard_normal((k, n)).astype(np.float16)


def _run_traced(registry, rng, n_requests=8, **executor_kw):
    tracer = Tracer()
    with BatchExecutor(registry, tracer=tracer, **executor_kw) as ex:
        reqs = [
            SpmmRequest(f"w{i % 2}", _panel(rng, n=8 + i)) for i in range(n_requests)
        ]
        results = ex.run(reqs)
    return tracer, results


class TestRequestSpans:
    def test_one_root_span_per_completed_request(self, registry, rng, metrics):
        tracer, results = _run_traced(registry, rng, max_batch=4)
        spans = tracer.buffer.snapshot()
        roots = [s for s in spans if s.name == "serve.request"]
        assert len(roots) == len(results) == 8
        # Every root is its own trace, carries the request identity, and
        # completed ok on the jigsaw route.
        assert len({s.trace_id for s in roots}) == 8
        for s in roots:
            assert s.parent_id is None
            assert s.attrs["outcome"] == "ok"
            assert s.attrs["route"] == "jigsaw"
            assert "request_id" in s.attrs and "matrix" in s.attrs

    def test_children_consistent_with_request_stats(self, registry, rng, metrics):
        tracer, results = _run_traced(registry, rng, max_batch=4)
        spans = tracer.buffer.snapshot()
        roots = {
            s.attrs["request_id"]: s for s in spans if s.name == "serve.request"
        }
        children = {}
        for s in spans:
            if s.parent_id is not None:
                children.setdefault(s.parent_id, []).append(s)

        for res in results:
            stats = res.stats
            root = roots[stats.request_id]
            kids = {c.name: c for c in children.get(root.span_id, [])}
            # queue child covers submit -> batch start, exactly the
            # executor's own queue_wait_s measurement.
            assert kids["serve.queue"].duration_s == pytest.approx(
                stats.queue_wait_s, abs=1e-9
            )
            batch = kids["serve.batch"]
            assert batch.attrs["batch_size"] == stats.batch_size
            # kernel grandchild carries the simulated kernel attribution.
            (kernel,) = [
                c for c in children.get(batch.span_id, []) if c.name == "serve.kernel"
            ]
            assert kernel.attrs["kernel_us"] == pytest.approx(stats.kernel_us)
            assert kernel.attrs["batch_kernel_us"] == pytest.approx(
                stats.batch_kernel_us
            )
            # Children nest inside the root interval.
            for c in kids.values():
                assert c.trace_id == root.trace_id
                assert root.start_s <= c.start_s
                assert c.end_s <= root.end_s + 1e-9

    def test_exported_spans_pass_schema_validation(self, registry, rng, metrics):
        tracer, _ = _run_traced(registry, rng, max_batch=4)
        recs = [s.to_dict() for s in tracer.buffer.snapshot()]
        assert validate_span_records(recs) == []

    def test_rejected_request_root_span_says_so(self, registry, rng, metrics):
        from repro.serve import RejectedError

        tracer = Tracer()
        # max_batch > burst so nothing dispatches while we overfill.
        with BatchExecutor(
            registry, tracer=tracer, max_batch=64, max_pending=2
        ) as ex:
            f1 = ex.submit(SpmmRequest("w0", _panel(rng)))
            f2 = ex.submit(SpmmRequest("w0", _panel(rng)))
            with pytest.raises(RejectedError):
                ex.submit(SpmmRequest("w0", _panel(rng)))
            ex.flush()
            for f in (f1, f2):
                f.result(timeout=60)
        roots = [
            s for s in tracer.buffer.snapshot() if s.name == "serve.request"
        ]
        outcomes = sorted(s.attrs["outcome"] for s in roots)
        assert outcomes == ["ok", "ok", "rejected"]
        rejected = [s for s in roots if s.attrs["outcome"] == "rejected"]
        assert rejected[0].attrs["error_type"] == "RejectedError"
        assert metrics.get("repro_rejected_total").value() == 1

    def test_queue_wait_histogram_collected(self, registry, rng, metrics):
        _run_traced(registry, rng, max_batch=4)
        h = metrics.get("repro_queue_wait_seconds")
        assert h is not None
        assert h.count() == 8
        c = metrics.get("repro_requests_total")
        assert c.value(route="jigsaw") == 8


class TestDisarmed:
    def test_null_tracer_records_nothing(self, registry, rng, metrics):
        with BatchExecutor(registry, max_batch=4) as ex:
            assert ex.tracer is NULL_TRACER
            results = ex.run(
                [SpmmRequest("w0", _panel(rng)) for _ in range(4)]
            )
        assert len(results) == 4
        assert len(NULL_TRACER.buffer) == 0

    def test_metrics_still_collected_when_disarmed(self, registry, rng, metrics):
        with BatchExecutor(registry, max_batch=4) as ex:
            ex.run([SpmmRequest("w0", _panel(rng)) for _ in range(4)])
        assert metrics.get("repro_requests_total").value(route="jigsaw") == 4
