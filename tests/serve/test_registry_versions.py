"""Versioned registry entries: apply_update bumps a monotonic content
version, releases the old plan's residency charge exactly once, keeps
in-flight old-version consumers bit-identical, and holds both versions'
disk artifacts until gc_stale."""

import numpy as np
import pytest

from repro.serve import BatchExecutor, PlanRegistry, SpmmRequest
from tests.conftest import random_vector_sparse


@pytest.fixture()
def registry(rng, tmp_path):
    reg = PlanRegistry(cache_dir=tmp_path, block_tiles=(64,))
    reg.register("w", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    return reg


def _upd(rng, n=3):
    rows = rng.integers(0, 64, size=n)
    cols = rng.integers(0, 128, size=n)
    values = (rng.standard_normal(n) * 0.5).astype(np.float16)
    return rows, cols, values


class TestApplyUpdate:
    def test_bumps_version_and_serves_new_content(self, registry, rng):
        assert registry.version("w") == 0
        b = rng.standard_normal((128, 8)).astype(np.float16)
        registry.warm()
        before = registry.get("w").run(b, version="v3").c
        rows, cols, values = _upd(rng)
        assert registry.apply_update("w", rows, cols, values) == 1
        assert registry.version("w") == 1
        plan = registry.get("w")
        assert plan.content_version == 1
        expect = registry.matrix("w")
        np.testing.assert_array_equal(plan._a, expect)
        after = plan.run(b, version="v3").c
        # The stored matrix actually changed, and so did the product.
        assert not np.array_equal(before, after)
        # Repair count is visible registry-wide.
        assert registry.repairs == 1

    def test_update_unregistered_matrix_raises(self, registry, rng):
        with pytest.raises(KeyError):
            registry.apply_update("ghost", *_upd(rng))

    def test_update_while_not_resident_builds_at_new_version(self, registry, rng):
        # No warm/get: the plan was never admitted.  The version still
        # bumps and the next admission builds the updated content.
        rows, cols, values = _upd(rng)
        registry.apply_update("w", rows, cols, values)
        assert registry.version("w") == 1
        assert registry.stats.evictions == 0
        plan = registry.get("w")
        assert plan.content_version == 1
        np.testing.assert_array_equal(plan._a, registry.matrix("w"))


class TestResidencyAccounting:
    def test_charge_released_exactly_once(self, registry, rng):
        registry.warm()
        registry.get("w").format_for(64)
        charged = registry.resident_bytes()
        assert charged > 0
        rows, cols, values = _upd(rng)
        registry.apply_update("w", rows, cols, values)
        # Old charge released, new plan charged: the total reflects
        # exactly one resident plan (never a double-release or a leak).
        assert registry.stats.evictions == 1
        after = registry.resident_bytes()
        assert after > 0
        # Evicting the sole entry must land the accounting at exactly
        # zero — a double-released old charge would go negative.
        assert registry.evict("w") is True
        assert registry.resident_bytes() == 0

    def test_repeated_updates_keep_accounting_stable(self, registry, rng):
        registry.warm()
        for expect_version in (1, 2, 3):
            rows, cols, values = _upd(rng)
            registry.apply_update("w", rows, cols, values)
            assert registry.version("w") == expect_version
        assert registry.get("w").content_version == 3
        registry.evict("w")
        assert registry.resident_bytes() == 0


class TestInFlightOldVersion:
    def test_old_plan_object_stays_bit_identical(self, registry, rng):
        registry.warm()
        old_plan = registry.get("w")
        b = rng.standard_normal((128, 8)).astype(np.float16)
        before = old_plan.run(b, version="v3").c
        rows, cols, values = _upd(rng)
        registry.apply_update("w", rows, cols, values)
        # A consumer holding the old plan (an in-flight request) keeps
        # computing old-version results, bit for bit; new lookups see
        # the new version.
        assert old_plan.content_version == 0
        np.testing.assert_array_equal(old_plan.run(b, version="v3").c, before)
        assert registry.get("w") is not old_plan

    def test_serving_across_update_matches_each_version(self, registry, rng):
        a_old = registry.matrix("w").copy()
        rows, cols, values = _upd(rng)
        panels = [
            rng.standard_normal((128, 8)).astype(np.float16) for _ in range(4)
        ]
        with BatchExecutor(registry, max_batch=4) as ex:
            before = [
                ex.submit(SpmmRequest("w", p, version="v3")) for p in panels
            ]
            ex.flush()
            before = [f.result(timeout=60).c for f in before]
            registry.apply_update("w", rows, cols, values)
            after = [
                ex.submit(SpmmRequest("w", p, version="v3")) for p in panels
            ]
            ex.flush()
            after = [f.result(timeout=60).c for f in after]
        from repro.core import JigsawPlan

        a_new = a_old.copy()
        a_new[rows, cols] = values
        for p, c_old, c_new in zip(panels, before, after):
            np.testing.assert_array_equal(
                c_old, JigsawPlan(a_old).run(p, version="v3").c
            )
            np.testing.assert_array_equal(
                c_new, JigsawPlan(a_new).run(p, version="v3").c
            )


class TestStaleArtifacts:
    def test_disk_holds_both_versions_until_gc(self, registry, rng):
        registry.warm()
        old_paths = registry.get("w").artifact_paths()
        assert old_paths and all(p.exists() for p in old_paths)
        rows, cols, values = _upd(rng)
        registry.apply_update("w", rows, cols, values)
        new_paths = registry.get("w").artifact_paths()
        assert new_paths and all(p.exists() for p in new_paths)
        assert set(new_paths).isdisjoint(old_paths)
        # The retired version's artifacts survive the update (in-flight
        # readers, crash recovery) and are tracked as stale.
        assert registry.stale_artifacts("w") == old_paths
        assert all(p.exists() for p in old_paths)
        removed = registry.gc_stale("w")
        assert removed == len(old_paths)
        assert not any(p.exists() for p in old_paths)
        assert all(p.exists() for p in new_paths)
        assert registry.stale_artifacts("w") == []
        assert registry.gc_stale() == 0

    def test_gc_stale_all_names(self, registry, rng):
        registry.register(
            "w2", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        )
        registry.warm()
        for name in ("w", "w2"):
            rows, cols, values = _upd(rng)
            registry.apply_update(name, rows, cols, values)
        stale = registry.stale_artifacts("w") + registry.stale_artifacts("w2")
        assert stale
        assert registry.gc_stale() == len(stale)
        assert not any(p.exists() for p in stale)
