"""Self-healing serving under injected faults: retry, breakers, routing,
artifact quarantine, and admission control, end to end."""

import os

import numpy as np
import pytest

from repro.faults import (
    CLOSED,
    OPEN,
    BreakerBoard,
    FaultInjectedError,
    FaultPlan,
    RetryPolicy,
)
from repro.serve import BatchExecutor, PlanRegistry, RejectedError, SpmmRequest
from tests.conftest import random_vector_sparse

#: CI's chaos job sweeps this seed; every test must hold for any value.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def registry(rng, tmp_path):
    reg = PlanRegistry(cache_dir=tmp_path)
    reg.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    return reg


def _panel(rng, k=128, n=16):
    return rng.standard_normal((k, n)).astype(np.float16)


def _reference(reg, name, b):
    return reg.matrix(name).astype(np.float32) @ b.astype(np.float32)


def _executor(registry, fault_plan=None, clock=None, **kw):
    kw.setdefault("max_batch", 4)
    kw.setdefault("retry_policy", RetryPolicy(max_attempts=3, base_delay_s=1e-5))
    if clock is not None:
        kw.setdefault(
            "breakers",
            BreakerBoard(failure_threshold=2, cooldown_s=1.0, clock=clock),
        )
    return BatchExecutor(registry, fault_plan=fault_plan, sleep=lambda s: None, **kw)


class TestRetry:
    def test_transient_kernel_fault_absorbed_by_retry(self, registry, rng):
        fp = FaultPlan(seed=CHAOS_SEED).add(
            "executor.kernel.jigsaw", probability=1.0, count=1
        )
        with _executor(registry, fault_plan=fp) as ex:
            b = _panel(rng)
            res = ex.run([SpmmRequest("w0", b)])[0]
        assert res.stats.route == "jigsaw"  # retry kept the fast path
        np.testing.assert_allclose(
            res.c, _reference(registry, "w0", b), rtol=1e-3, atol=1e-2
        )
        stats = ex.stats()
        assert stats.retries >= 1
        assert stats.breaker_trips == 0

    def test_registry_admission_fault_served_dense(self, registry, rng):
        # Even a persistently failing plan admission degrades to dense.
        fp = FaultPlan(seed=CHAOS_SEED).add("registry.get", probability=1.0)
        registry.fault_plan = fp  # the site lives in PlanRegistry.get
        with _executor(registry, fault_plan=fp) as ex:
            b = _panel(rng)
            res = ex.run([SpmmRequest("w0", b)])[0]
        assert res.stats.route == "dense"
        np.testing.assert_allclose(
            res.c, _reference(registry, "w0", b), rtol=1e-3, atol=1e-2
        )


class TestBreakerRouting:
    def test_persistent_jigsaw_faults_trip_to_hybrid(self, registry, rng, clock):
        # Poison both fast batched routes (jigsaw and compiled) so the
        # batch lands on hybrid; each serves the breaker drill's purpose.
        fp = (
            FaultPlan(seed=CHAOS_SEED)
            .add("executor.kernel.jigsaw", probability=1.0)
            .add("executor.kernel.compiled", probability=1.0)
        )
        with _executor(registry, fault_plan=fp, clock=clock) as ex:
            first = ex.run([SpmmRequest("w0", _panel(rng))])[0]
            # Retries exhausted -> breaker counted 1 failure per fast
            # route -> batch fell through to hybrid, still correct.
            assert first.stats.route == "hybrid"
            second = ex.run([SpmmRequest("w0", _panel(rng))])[0]
            assert second.stats.route == "hybrid"
            # 2 failures tripped each fast route's breaker: skipped now.
            assert ex.breakers.get("w0", "jigsaw").state == OPEN
            assert ex.breakers.get("w0", "compiled").state == OPEN
            stats = ex.stats()
        assert stats.breaker_trips == 2
        assert stats.route_counts["jigsaw"] == 0
        assert stats.route_counts["compiled"] == 0

    def test_hybrid_faults_too_trip_to_dense(self, registry, rng, clock):
        fp = (
            FaultPlan(seed=CHAOS_SEED)
            .add("executor.kernel.jigsaw", probability=1.0)
            .add("executor.kernel.compiled", probability=1.0)
            .add("executor.kernel.hybrid", probability=1.0)
        )
        with _executor(registry, fault_plan=fp, clock=clock) as ex:
            results = [ex.run([SpmmRequest("w0", _panel(rng))])[0] for _ in range(3)]
            assert [r.stats.route for r in results] == ["dense"] * 3
            assert ex.breakers.get("w0", "jigsaw").state == OPEN
            assert ex.breakers.get("w0", "compiled").state == OPEN
            assert ex.breakers.get("w0", "hybrid").state == OPEN

    def test_half_open_probe_restores_fast_path(self, registry, rng, clock):
        fp = (
            FaultPlan(seed=CHAOS_SEED)
            .add("executor.kernel.jigsaw", probability=1.0)
            .add("executor.kernel.compiled", probability=1.0)
        )
        with _executor(registry, fault_plan=fp, clock=clock) as ex:
            for _ in range(2):
                ex.run([SpmmRequest("w0", _panel(rng))])
            assert ex.breakers.get("w0", "jigsaw").state == OPEN
            # While open, traffic routes hybrid without touching jigsaw.
            res = ex.run([SpmmRequest("w0", _panel(rng))])[0]
            assert res.stats.route == "hybrid"
            # Faults clear; after the cooldown, a half-open probe runs on
            # the jigsaw route, succeeds, and closes the breaker.
            fp.disable()
            clock.advance(2.0)
            res = ex.run([SpmmRequest("w0", _panel(rng))])[0]
            assert res.stats.route == "jigsaw"
            assert ex.breakers.get("w0", "jigsaw").state == CLOSED
            res = ex.run([SpmmRequest("w0", _panel(rng))])[0]
            assert res.stats.route == "jigsaw"

    def test_failed_probe_reopens(self, registry, rng, clock):
        fp = (
            FaultPlan(seed=CHAOS_SEED)
            .add("executor.kernel.jigsaw", probability=1.0)
            .add("executor.kernel.compiled", probability=1.0)
        )
        with _executor(registry, fault_plan=fp, clock=clock) as ex:
            for _ in range(2):
                ex.run([SpmmRequest("w0", _panel(rng))])
            clock.advance(2.0)  # probe window opens, but faults persist
            res = ex.run([SpmmRequest("w0", _panel(rng))])[0]
            assert res.stats.route == "hybrid"  # probe failed, served anyway
            assert ex.breakers.get("w0", "jigsaw").state == OPEN

    def test_breakers_are_per_matrix(self, registry, rng, clock):
        registry.register(
            "w1",
            random_vector_sparse(
                64, 128, v=4, sparsity=0.9, rng=np.random.default_rng(77)
            ),
        )
        fp = FaultPlan(seed=CHAOS_SEED).add("executor.kernel.jigsaw", probability=1.0)
        with _executor(registry, fault_plan=fp, clock=clock) as ex:
            for _ in range(2):
                ex.run([SpmmRequest("w0", _panel(rng))])
            fp.disable()
            # w0's breaker is open, but w1 was never poisoned.
            res = ex.run([SpmmRequest("w1", _panel(rng))])[0]
            assert res.stats.route == "jigsaw"
            assert ex.breakers.get("w0", "jigsaw").state == OPEN


class TestFailureIsolation:
    def test_poisoned_dense_request_does_not_fail_batchmates(
        self, registry, rng, clock
    ):
        # Jigsaw and hybrid fail persistently, so the batch lands on the
        # per-request dense route; the dense site fires exactly
        # max_attempts times, poisoning only the first request served.
        fp = (
            FaultPlan(seed=CHAOS_SEED)
            .add("executor.kernel.jigsaw", probability=1.0)
            .add("executor.kernel.compiled", probability=1.0)
            .add("executor.kernel.hybrid", probability=1.0)
            .add("executor.kernel.dense", probability=1.0, count=3)
        )
        with _executor(registry, fault_plan=fp, clock=clock, max_workers=1) as ex:
            futures = [ex.spmm("w0", _panel(rng)) for _ in range(3)]
            ex.flush()
            outcomes = []
            for f in futures:
                try:
                    outcomes.append(f.result(timeout=60).stats.route)
                except FaultInjectedError:
                    outcomes.append("failed")
        assert outcomes.count("failed") == 1  # isolation: one future, not three
        assert outcomes.count("dense") == 2


class TestQuarantine:
    def test_corrupt_artifact_quarantined_and_rebuilt(self, rng, tmp_path):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        warm = PlanRegistry(cache_dir=tmp_path)
        warm.register("w0", a)
        warm.warm()
        artifacts = sorted(tmp_path.glob("*.npz"))
        assert artifacts
        # Flip bytes in one artifact: the checksum catches it on load.
        artifacts[0].write_bytes(artifacts[0].read_bytes()[:-7] + b"garbage")

        registry = PlanRegistry(cache_dir=tmp_path)
        registry.register("w0", a)
        with BatchExecutor(registry, max_batch=4) as ex:
            b = _panel(rng)
            res = ex.run([SpmmRequest("w0", b)])[0]
            stats = ex.stats()
        np.testing.assert_allclose(
            res.c, _reference(registry, "w0", b), rtol=1e-3, atol=1e-2
        )
        assert stats.quarantined == 1
        quarantined = list((tmp_path / "quarantine").glob("*.npz"))
        assert [p.name for p in quarantined] == [artifacts[0].name]
        # The rebuild re-stored a fresh, loadable artifact in place.
        from repro.core import load_jigsaw

        load_jigsaw(artifacts[0])

    def test_injected_load_fault_rebuilds_without_crashing(self, rng, tmp_path):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        warm = PlanRegistry(cache_dir=tmp_path)
        warm.register("w0", a)
        warm.warm()

        fp = FaultPlan(seed=CHAOS_SEED).add("plan.cache.load", probability=1.0, count=1)
        registry = PlanRegistry(cache_dir=tmp_path, fault_plan=fp)
        registry.register("w0", a)
        with _executor(registry, fault_plan=fp) as ex:
            res = ex.run([SpmmRequest("w0", _panel(rng))])[0]
        assert res.stats.route == "jigsaw"
        assert registry.quarantined >= 1

    def test_injected_store_fault_still_serves_from_memory(self, rng, tmp_path):
        fp = FaultPlan(seed=CHAOS_SEED).add("plan.cache.store", probability=1.0)
        registry = PlanRegistry(cache_dir=tmp_path, fault_plan=fp)
        registry.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
        with _executor(registry, fault_plan=fp) as ex:
            res = ex.run([SpmmRequest("w0", _panel(rng))])[0]
        assert res.stats.route == "jigsaw"
        assert registry.store_failures >= 1
        assert not list(tmp_path.glob("*.npz"))  # nothing persisted


class TestAdmissionControl:
    def test_overflow_sheds_with_typed_error(self, registry, rng):
        # max_batch > burst so nothing dispatches while we overfill.
        with BatchExecutor(registry, max_batch=64, max_pending=2) as ex:
            f1 = ex.spmm("w0", _panel(rng))
            f2 = ex.spmm("w0", _panel(rng))
            with pytest.raises(RejectedError, match="full"):
                ex.spmm("w0", _panel(rng))
            ex.flush()
            for f in (f1, f2):
                f.result(timeout=60)
            stats = ex.stats()
        assert stats.rejected == 1
        assert stats.pending_peak == 2

    def test_capacity_recovers_after_completion(self, registry, rng):
        with BatchExecutor(registry, max_batch=64, max_pending=1) as ex:
            ex.spmm("w0", _panel(rng))
            ex.flush()
            # Wait for completion, then capacity is back.
            deadline = 60
            import time as _time

            t0 = _time.perf_counter()
            while ex.pending and _time.perf_counter() - t0 < deadline:
                _time.sleep(0.005)
            assert ex.pending == 0
            ex.spmm("w0", _panel(rng)).cancel()

    def test_validation(self, registry):
        with pytest.raises(ValueError, match="max_pending"):
            BatchExecutor(registry, max_pending=0)


class TestChaosStats:
    def test_resilience_counters_rendered(self, registry, rng, clock):
        from repro.analysis import render_serving

        fp = FaultPlan(seed=CHAOS_SEED).add(
            "executor.kernel.jigsaw", probability=1.0, count=1
        )
        with _executor(registry, fault_plan=fp, clock=clock) as ex:
            ex.run([SpmmRequest("w0", _panel(rng))])
            out = render_serving(ex.stats())
        assert "kernel retries" in out
        assert "breaker trips" in out
        assert "artifacts quarantined" in out
        assert "rejected (shed)" in out


class TestQuarantineBudget:
    """The quarantine directory is capped: oldest artifacts are evicted
    past the byte/count budget, the newest always survives, and the
    evictions surface in ServeStats."""

    def _corrupt_all(self, cache_dir):
        artifacts = sorted(cache_dir.glob("*.npz"))
        assert artifacts
        for p in artifacts:
            p.write_bytes(p.read_bytes()[:-7] + b"garbage")
        return artifacts

    def test_file_count_budget_keeps_newest(self, rng, tmp_path):
        warm = PlanRegistry(cache_dir=tmp_path, block_tiles=(64,))
        for i in range(4):
            warm.register(
                f"w{i}", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
            )
        warm.warm()
        self._corrupt_all(tmp_path)

        registry = PlanRegistry(
            cache_dir=tmp_path, block_tiles=(64,), quarantine_max_files=2
        )
        for i in range(4):
            registry.register(f"w{i}", warm.matrix(f"w{i}"))
        with BatchExecutor(registry, max_batch=4) as ex:
            reqs = [SpmmRequest(f"w{i}", _panel(rng)) for i in range(4)]
            for req, res in zip(reqs, ex.run(reqs)):
                np.testing.assert_allclose(
                    res.c,
                    _reference(registry, req.matrix, req.b),
                    rtol=1e-3,
                    atol=1e-2,
                )
            stats = ex.stats()

        qdir = tmp_path / "quarantine"
        assert stats.quarantined == 4  # every corrupt artifact was caught
        assert len(list(qdir.glob("*.npz"))) <= 2  # ... but the dir is capped
        assert stats.quarantine_evicted >= 2  # and the evictions are counted

    def test_byte_budget_evicts_oldest(self, rng, tmp_path):
        warm = PlanRegistry(cache_dir=tmp_path, block_tiles=(64,))
        for i in range(3):
            warm.register(
                f"w{i}", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
            )
        warm.warm()
        self._corrupt_all(tmp_path)

        # A 1-byte budget forces eviction down to the survivor minimum.
        registry = PlanRegistry(
            cache_dir=tmp_path, block_tiles=(64,), quarantine_max_bytes=1
        )
        for i in range(3):
            registry.register(f"w{i}", warm.matrix(f"w{i}"))
        with BatchExecutor(registry, max_batch=4) as ex:
            ex.run([SpmmRequest(f"w{i}", _panel(rng)) for i in range(3)])
            stats = ex.stats()
        # The newest incident's artifact always survives as evidence.
        assert len(list((tmp_path / "quarantine").glob("*.npz"))) == 1
        assert stats.quarantine_evicted == 2

    def test_default_budget_evicts_nothing_here(self, rng, tmp_path):
        warm = PlanRegistry(cache_dir=tmp_path, block_tiles=(64,))
        warm.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
        warm.warm()
        self._corrupt_all(tmp_path)
        registry = PlanRegistry(cache_dir=tmp_path, block_tiles=(64,))
        registry.register("w0", warm.matrix("w0"))
        with BatchExecutor(registry, max_batch=4) as ex:
            ex.run([SpmmRequest("w0", _panel(rng))])
            stats = ex.stats()
        assert stats.quarantined == 1
        assert stats.quarantine_evicted == 0
