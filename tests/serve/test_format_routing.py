"""Serve-layer tests for the format zoo and the dtype bugfix sweep:
the ``jigsaw@vnm`` route, dtype-keyed batch forming, fp32 precision
preservation, and the typed ``MixedDtypeError``."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.formats import venom_prune
from repro.serve import (
    FALLBACK_CHAIN,
    BatchExecutor,
    MixedDtypeError,
    PlanRegistry,
    SpmmRequest,
)
from tests.conftest import random_vector_sparse


@pytest.fixture()
def registry(rng, tmp_path):
    reg = PlanRegistry(cache_dir=tmp_path)
    reg.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    venom = venom_prune(
        rng.standard_normal((128, 128)).astype(np.float16), v=32, n=2, m=16
    )
    reg.register("venom", venom)
    return reg


def _reference(reg, name, b):
    return reg.matrix(name).astype(np.float32) @ b.astype(np.float32)


class TestVnmRoute:
    def test_vnm_route_serves_bit_identical(self, registry, rng):
        # One request per launch: the batch's concatenated panel is then
        # exactly the request's panel, and the acceptance property holds
        # bit-for-bit (np.array_equal, not allclose).
        with BatchExecutor(registry, chain=("jigsaw@vnm", "dense"), max_batch=4) as ex:
            for _ in range(3):
                req = SpmmRequest(
                    "venom", rng.standard_normal((128, 8)).astype(np.float16)
                )
                (res,) = ex.run([req])
                assert res.stats.route == "jigsaw@vnm"
                assert np.array_equal(res.c, _reference(registry, "venom", req.b))

    def test_vnm_route_batched_stays_correct(self, registry, rng):
        # A multi-request batch concatenates panels; BLAS may sum the
        # wider panel in a different order, so batched results are
        # allclose (still fp32-accurate), with the single-launch case
        # above pinning exact bit-identity.
        with BatchExecutor(registry, chain=("jigsaw@vnm", "dense"), max_batch=4) as ex:
            reqs = [
                SpmmRequest("venom", rng.standard_normal((128, 8)).astype(np.float16))
                for _ in range(4)
            ]
            results = ex.run(reqs)
            assert len(ex.batch_stats()) == 1
        for res, req in zip(results, reqs):
            assert res.stats.route == "jigsaw@vnm"
            np.testing.assert_allclose(
                res.c, _reference(registry, "venom", req.b), rtol=1e-6, atol=1e-5
            )

    def test_vnm_route_filtered_for_non_vnm_matrix(self, registry, rng):
        # w0 is generic 2:4 — vnm_plan() is None, so the format route is
        # dropped at forming time and the batch degrades down the chain.
        with BatchExecutor(registry, chain=("jigsaw@vnm", "dense"), max_batch=4) as ex:
            (res,) = ex.run(
                [SpmmRequest("w0", rng.standard_normal((128, 8)).astype(np.float16))]
            )
        assert res.stats.route == "dense"
        assert res.c.shape == (64, 8)

    def test_full_five_route_chain_validates_and_serves(self, registry, rng):
        with BatchExecutor(registry, chain=FALLBACK_CHAIN, max_batch=4) as ex:
            (res,) = ex.run(
                [SpmmRequest("venom", rng.standard_normal((128, 8)).astype(np.float16))]
            )
        assert res.stats.route == "jigsaw"  # static chain: prior order wins

    def test_cost_model_discovers_vnm_route(self, registry, rng):
        # No pinning: exploration probes jigsaw@vnm, the measurement
        # lands in the snapshot, and the route actually serves traffic.
        from repro.sched import CostModel, Scheduler

        sched = Scheduler(cost_model=CostModel(explore_every=4))
        with BatchExecutor(registry, scheduler=sched, max_batch=2) as ex:
            reqs = []
            for _ in range(12):
                req = SpmmRequest(
                    "venom", rng.standard_normal((128, 8)).astype(np.float16)
                )
                reqs.append(req)
                (res,) = ex.run([req])
                assert res.c.shape == (128, 8)
            routes = {s.route for s in ex.request_stats()}
        snap = sched.cost_model.snapshot()["venom"]
        assert "jigsaw@vnm" in snap
        assert "jigsaw@vnm" in routes


class TestDtypeHandling:
    def test_fp32_precision_preserved_on_dense_route(self, registry, rng):
        # 1e-5-scale fp32 values are subnormal in fp16; the old forced
        # fp16 concat destroyed them.  The dense route is a pure fp32
        # matmul, so the result must now be bit-equal to the reference.
        b = (rng.standard_normal((128, 8)) * 1e-5).astype(np.float32)
        with BatchExecutor(registry, chain=("dense",), max_batch=4) as ex:
            (res,) = ex.run([SpmmRequest("w0", b)])
        assert res.stats.route == "dense"
        assert res.c.dtype == np.float32
        assert np.array_equal(res.c, _reference(registry, "w0", b))

    def test_fp32_precision_preserved_on_jigsaw_route(self, registry, rng):
        b = (rng.standard_normal((128, 8)) * 1e-5).astype(np.float32)
        with BatchExecutor(registry, max_batch=4) as ex:
            (res,) = ex.run([SpmmRequest("w0", b)])
        assert res.stats.route == "jigsaw"
        ref = _reference(registry, "w0", b)
        # Tight tolerance: a silent fp16 downcast of B loses ~all of the
        # signal at this scale (fp16 subnormal spacing is ~6e-8).
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-9)
        assert np.abs(res.c).max() > 0

    def test_per_dtype_groups_do_not_mix(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            b16 = [rng.standard_normal((128, 4)).astype(np.float16) for _ in range(2)]
            b32 = [rng.standard_normal((128, 4)).astype(np.float32) for _ in range(2)]
            reqs = [SpmmRequest("w0", b) for b in (*b16, *b32)]
            results = ex.run(reqs)
            batches = ex.batch_stats()
        # Same matrix, same version — but two dtype-keyed groups.
        assert len(batches) == 2
        assert sorted(b.size for b in batches) == [2, 2]
        for res, req in zip(results, reqs):
            np.testing.assert_allclose(
                res.c, _reference(registry, "w0", req.b), rtol=1e-3, atol=1e-2
            )

    def test_submit_rejects_unsupported_dtype(self, registry):
        with BatchExecutor(registry, max_batch=4) as ex:
            with pytest.raises(ValueError, match="dtype"):
                ex.run([SpmmRequest("w0", np.zeros((128, 4), np.float64))])

    def test_concat_panels_raises_typed_mixed_dtype_error(self):
        # Defense in depth below the forming layer: a hand-built mixed
        # live list (forming bug, or a caller bypassing submit) raises
        # the typed error instead of silently downcasting to fp16.
        live = [
            SimpleNamespace(request=SimpleNamespace(b=np.zeros((8, 2), np.float16))),
            SimpleNamespace(request=SimpleNamespace(b=np.zeros((8, 2), np.float32))),
        ]
        with pytest.raises(MixedDtypeError, match="dtype"):
            BatchExecutor._concat_panels(live)

    def test_concat_panels_keeps_uniform_dtype(self):
        live = [
            SimpleNamespace(request=SimpleNamespace(b=np.ones((8, 2), np.float32))),
            SimpleNamespace(request=SimpleNamespace(b=np.ones((8, 3), np.float32))),
        ]
        widths, b_cat = BatchExecutor._concat_panels(live)
        assert widths == [2, 3]
        assert b_cat.dtype == np.float32
        assert b_cat.shape == (8, 5)

    def test_mixed_dtype_error_is_a_serve_error(self):
        from repro.serve import ServeError

        assert issubclass(MixedDtypeError, ServeError)
