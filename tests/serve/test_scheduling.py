"""Scheduler integration with the executor: submit_many contracts, the
launch-time deadline recheck, EDF promotion, and stats/trace folding."""

import time

import numpy as np
import pytest

from repro.obs import MetricsRegistry, Tracer, set_metrics
from repro.sched import AdmissionController, CostModel, Scheduler, ThrottledError
from repro.serve import BatchExecutor, PlanRegistry, SpmmRequest, SubmitReport
from tests.conftest import random_vector_sparse


@pytest.fixture()
def registry(rng, tmp_path):
    reg = PlanRegistry(cache_dir=tmp_path)
    reg.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    reg.register("w1", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    return reg


@pytest.fixture()
def metrics():
    mine = MetricsRegistry()
    prev = set_metrics(mine)
    yield mine
    set_metrics(prev)


def _panel(rng, k=128, n=16):
    return rng.standard_normal((k, n)).astype(np.float16)


def _reference(reg, name, b):
    return reg.matrix(name).astype(np.float32) @ b.astype(np.float32)


def _limited_scheduler(burst=2.0):
    adm = AdmissionController().configure(
        "bg", priority="best_effort", rate_per_s=1.0, burst=burst
    )
    return Scheduler(admission=adm)


class TestSubmitManyPartial:
    def test_bad_request_becomes_hole_rest_served(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            reqs = [
                SpmmRequest("w0", _panel(rng)),
                SpmmRequest("w0", np.zeros((3, 3), np.float16)),  # bad rows
                SpmmRequest("w0", _panel(rng)),
            ]
            report = ex.submit_many(reqs, on_error="partial")
            ex.flush()
            results = [f.result(timeout=30) for f in report.accepted_futures()]
        assert isinstance(report, SubmitReport)
        assert report.futures[1] is None
        assert report.accepted == 2 and report.rejected == 1 and not report.ok
        (index, error), = report.errors
        assert index == 1 and isinstance(error, ValueError)
        for res, req in zip(results, [reqs[0], reqs[2]]):
            np.testing.assert_allclose(
                res.c, _reference(registry, "w0", req.b), rtol=1e-3, atol=1e-2
            )

    def test_throttled_requests_recorded_with_typed_error(self, registry, rng):
        with BatchExecutor(
            registry, max_batch=64, scheduler=_limited_scheduler(burst=2)
        ) as ex:
            reqs = [SpmmRequest("w0", _panel(rng), tenant="bg") for _ in range(5)]
            report = ex.submit_many(reqs, on_error="partial")
            ex.flush()
            for f in report.accepted_futures():
                f.result(timeout=30)
            stats = ex.stats()
        assert report.accepted == 2 and report.rejected == 3
        assert all(isinstance(e, ThrottledError) for _, e in report.errors)
        assert all(e.retry_after_s > 0 for _, e in report.errors)
        # Typed throttles are folded into the aggregated ServeStats.
        assert stats.throttled == 3
        assert stats.throttled_by_tenant == {"bg": 3}
        assert stats.tenant_counts == {"bg": 2}

    def test_all_good_report_is_ok(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            report = ex.submit_many(
                [SpmmRequest("w0", _panel(rng)) for _ in range(3)],
                on_error="partial",
            )
            ex.flush()
            [f.result(timeout=30) for f in report.futures]
        assert report.ok and report.accepted == 3 and report.errors == []

    def test_invalid_mode_rejected(self, registry):
        with BatchExecutor(registry) as ex:
            with pytest.raises(ValueError, match="on_error"):
                ex.submit_many([], on_error="retry")


class TestSubmitManyCancel:
    def test_mid_list_failure_cancels_and_raises(self, registry, rng):
        with BatchExecutor(registry, max_batch=64) as ex:
            reqs = [
                SpmmRequest("w0", _panel(rng)),
                SpmmRequest("w0", np.zeros((3, 3), np.float16)),
            ]
            with pytest.raises(ValueError, match="rows"):
                ex.submit_many(reqs, on_error="cancel")
            deadline = time.perf_counter() + 30
            while ex.pending and time.perf_counter() < deadline:
                time.sleep(0.005)
            assert ex.pending == 0

    def test_throttle_mid_burst_cancels_earlier_futures(self, registry, rng):
        with BatchExecutor(
            registry, max_batch=64, scheduler=_limited_scheduler(burst=2)
        ) as ex:
            reqs = [SpmmRequest("w0", _panel(rng), tenant="bg") for _ in range(4)]
            with pytest.raises(ThrottledError):
                ex.submit_many(reqs, on_error="cancel")
            deadline = time.perf_counter() + 30
            while ex.pending and time.perf_counter() < deadline:
                time.sleep(0.005)
            assert ex.pending == 0


class TestLaunchDeadlineRecheck:
    def test_slow_plan_admission_sheds_to_dense_at_launch(self, registry, rng):
        # The request clears the formation-time check instantly (run()
        # flushes with ~zero queue wait), then plan admission eats the
        # rest of the deadline budget: the pre-launch recheck must shed
        # it to the dense fallback rather than let it ride the fast path
        # past its deadline.
        orig_get = registry.get

        def slow_get(name):
            time.sleep(0.15)
            return orig_get(name)

        registry.get = slow_get
        b = _panel(rng)
        with BatchExecutor(registry, max_batch=8) as ex:
            res = ex.run([SpmmRequest("w0", b, deadline_s=0.05)])[0]
        assert res.stats.route == "dense"
        assert res.stats.deadline_expired
        np.testing.assert_allclose(
            res.c, _reference(registry, "w0", b), rtol=1e-3, atol=1e-2
        )

    def test_fast_admission_within_deadline_keeps_fast_path(self, registry, rng):
        registry.warm()
        with BatchExecutor(registry, max_batch=8) as ex:
            res = ex.run([SpmmRequest("w0", _panel(rng), deadline_s=30.0)])[0]
        assert res.stats.route == "jigsaw"
        assert not res.stats.deadline_expired


class TestEdfPromotion:
    def test_deadline_request_promoted_ahead_of_linger(self, registry, rng):
        # Linger window far beyond the deadline: FIFO would discover the
        # request expired at dequeue; EDF must promote the group early
        # enough to launch within the deadline.
        registry.warm()
        with BatchExecutor(
            registry,
            max_batch=64,
            batch_window_s=30.0,
            scheduler=Scheduler(promote_margin_s=0.05),
        ) as ex:
            t0 = time.perf_counter()
            fut = ex.spmm("w0", _panel(rng), deadline_s=0.4)
            res = fut.result(timeout=10)
            elapsed = time.perf_counter() - t0
            stats = ex.stats()
        assert res.stats.route == "jigsaw"
        assert not res.stats.deadline_expired
        assert elapsed < 5.0  # promoted, not lingered for 30s
        assert stats.promoted == 1

    def test_without_scheduler_deadline_expires_at_formation(self, registry, rng):
        # Same layout, no scheduler: the linger window outlives the
        # deadline, the formation-time check routes to dense.
        registry.warm()
        with BatchExecutor(registry, max_batch=64, batch_window_s=0.3) as ex:
            fut = ex.spmm("w0", _panel(rng), deadline_s=0.05)
            res = fut.result(timeout=10)
        assert res.stats.route == "dense"
        assert res.stats.deadline_expired


class TestCostModelIntegration:
    def test_kernel_timings_feed_the_model(self, registry, rng):
        sched = Scheduler(cost_model=CostModel())
        with BatchExecutor(registry, max_batch=8, scheduler=sched) as ex:
            ex.run([SpmmRequest("w0", _panel(rng)) for _ in range(4)])
        assert sched.cost_model.samples("w0", "jigsaw") == 1
        snap = sched.cost_model.snapshot()
        assert snap["w0"]["jigsaw"] > 0

    def test_dense_fallback_also_feeds_the_model(self, registry, rng):
        sched = Scheduler(cost_model=CostModel())
        with BatchExecutor(registry, max_batch=8, scheduler=sched) as ex:
            ex.run([SpmmRequest("w0", _panel(rng), deadline_s=0.0)])
        assert sched.cost_model.samples("w0", "dense") == 1


class TestSchedulerStatsAndRendering:
    def test_flush_orders_groups_by_priority(self, registry, rng):
        adm = (
            AdmissionController()
            .configure("ui", priority="interactive")
            .configure("bg", priority="best_effort")
        )
        with BatchExecutor(
            registry,
            max_batch=64,
            batch_window_s=60.0,
            max_workers=1,
            scheduler=Scheduler(admission=adm),
        ) as ex:
            futures = [ex.submit(SpmmRequest("w1", _panel(rng), tenant="bg"))]
            futures.append(ex.submit(SpmmRequest("w0", _panel(rng), tenant="ui")))
            ex.flush()
            for f in futures:
                f.result(timeout=30)
            batches = ex.batch_stats()
        assert [b.matrix for b in batches] == ["w0", "w1"]
        assert [b.weight for b in batches] == [0, 2]

    def test_render_serving_shows_scheduler_rows(self, registry, rng):
        from repro.analysis import render_serving

        with BatchExecutor(
            registry, max_batch=64, scheduler=_limited_scheduler(burst=1)
        ) as ex:
            report = ex.submit_many(
                [SpmmRequest("w0", _panel(rng), tenant="bg") for _ in range(2)],
                on_error="partial",
            )
            ex.flush()
            for f in report.accepted_futures():
                f.result(timeout=30)
            out = render_serving(ex.stats())
        assert "throttled (rate limit)" in out
        assert "promoted (EDF)" in out
        assert "tenant: bg" in out
        assert "1 served / 1 throttled" in out


class TestSchedTracing:
    def test_admit_spans_record_both_outcomes(self, registry, rng, metrics):
        tracer = Tracer()
        with BatchExecutor(
            registry,
            max_batch=64,
            tracer=tracer,
            scheduler=_limited_scheduler(burst=1),
        ) as ex:
            fut = ex.submit(SpmmRequest("w0", _panel(rng), tenant="bg"))
            with pytest.raises(ThrottledError):
                ex.submit(SpmmRequest("w0", _panel(rng), tenant="bg"))
            ex.flush()
            fut.result(timeout=30)
        admits = [
            s for s in tracer.buffer.snapshot() if s.name == "sched.admit"
        ]
        outcomes = sorted(s.attrs["outcome"] for s in admits)
        assert outcomes == ["ok", "throttled"]
        assert all(s.attrs["tenant"] == "bg" for s in admits)
        assert metrics.get("repro_sched_throttled_total").value(tenant="bg") == 1

    def test_promotion_event_and_slack_histogram(self, registry, rng, metrics):
        registry.warm()
        tracer = Tracer()
        with BatchExecutor(
            registry,
            max_batch=64,
            batch_window_s=30.0,
            tracer=tracer,
            scheduler=Scheduler(promote_margin_s=0.05),
        ) as ex:
            ex.spmm("w0", _panel(rng), deadline_s=0.4).result(timeout=10)
        roots = [
            s for s in tracer.buffer.snapshot() if s.name == "serve.request"
        ]
        events = [e for s in roots for e in s.events if e.name == "sched.promote"]
        assert len(events) == 1
        assert events[0].attrs["slack_s"] > 0
        hist = metrics.get("repro_sched_slack_seconds")
        assert hist is not None and hist.count() == 1
        assert metrics.get("repro_sched_promoted_total").value() == 1
