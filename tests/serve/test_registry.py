"""Tests for the budgeted LRU plan registry."""

import numpy as np
import pytest

from repro.serve import PLAN_OVERHEAD_BYTES, PlanRegistry, plan_resident_bytes
from tests.conftest import random_vector_sparse


def _matrices(rng, n=3, m=64, k=128):
    return {
        f"w{i}": random_vector_sparse(m, k, v=4, sparsity=0.9, rng=rng)
        for i in range(n)
    }


class TestRegistration:
    def test_register_and_get(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path, block_tiles=(64,))
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        reg.register("w", a)
        plan = reg.get("w")
        assert plan.shape == a.shape
        assert reg.stats.misses == 1
        assert reg.get("w") is plan
        assert reg.stats.hits == 1

    def test_unknown_name_raises(self, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path)
        with pytest.raises(KeyError, match="register"):
            reg.get("nope")

    def test_register_rejects_conflicting_content(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path)
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        b = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        reg.register("w", a)
        reg.register("w", a)  # idempotent
        with pytest.raises(ValueError, match="different content"):
            reg.register("w", b)

    def test_register_rejects_1d(self, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path)
        with pytest.raises(ValueError, match="2-D"):
            reg.register("w", np.zeros(8, np.float16))

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            PlanRegistry(budget_bytes=0)


class TestBudgetAndLru:
    def test_no_budget_never_evicts(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path, block_tiles=(32,))
        for name, a in _matrices(rng).items():
            reg.register(name, a)
        reg.warm()
        assert reg.resident_plans == 3
        assert reg.stats.evictions == 0

    def test_budget_evicts_lru_first(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path, block_tiles=(32,))
        for name, a in _matrices(rng).items():
            reg.register(name, a)
        reg.warm()  # all resident; sizes known
        per_plan = plan_resident_bytes(reg.get("w0"))
        # Budget fits two warm plans; touch order decides the victim.
        reg.budget_bytes = 2 * per_plan + PLAN_OVERHEAD_BYTES
        reg.get("w1")
        reg.get("w2")
        reg.get("w0")  # LRU order now: w1, w2, w0
        assert reg.enforce_budget() == 1
        assert not reg.resident("w1")
        assert reg.resident("w2") and reg.resident("w0")
        assert reg.stats.evictions == 1

    def test_mru_plan_survives_tiny_budget(self, rng, tmp_path):
        reg = PlanRegistry(
            budget_bytes=1, cache_dir=tmp_path, block_tiles=(32,)
        )
        for name, a in _matrices(rng).items():
            reg.register(name, a)
        reg.warm()
        # A budget smaller than any single plan still leaves the most
        # recent plan resident — serving always has a working set of 1.
        assert reg.resident_plans == 1

    def test_eviction_readmits_from_disk_without_reorder(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path, block_tiles=(32,))
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        reg.register("w", a)
        reg.warm("w")
        assert reg.reorder_runs == 1
        jm_before = reg.get("w").format_for(32)
        assert reg.evict("w")
        assert not reg.resident("w")
        # Re-admission loads the artifact: reorder count frozen.
        plan = reg.get("w")
        jm_after = plan.format_for(32)
        assert reg.reorder_runs == 1
        assert plan.stats.plan_cache_hits == 1
        np.testing.assert_array_equal(jm_before.to_dense(), jm_after.to_dense())

    def test_no_cache_dir_eviction_recomputes(self, rng):
        # Documented trade-off: without a disk cache, eviction costs a
        # reorder on re-admission.
        reg = PlanRegistry(block_tiles=(32,))
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        reg.register("w", a)
        reg.warm("w")
        reg.evict("w")
        reg.get("w").format_for(32)
        assert reg.reorder_runs == 2

    def test_resident_bytes_grows_with_formats(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path, block_tiles=(16, 32, 64))
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        reg.register("w", a)
        plan = reg.get("w")
        empty = reg.resident_bytes()
        plan.format_for(64)
        one = reg.resident_bytes()
        plan.format_for(32)
        two = reg.resident_bytes()
        assert empty == PLAN_OVERHEAD_BYTES
        assert empty < one < two

    def test_clear(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path, block_tiles=(32,))
        for name, a in _matrices(rng).items():
            reg.register(name, a)
        reg.warm()
        reg.clear()
        assert reg.resident_plans == 0
        assert reg.stats.evictions == 3
        # Aggregated counters survive eviction of their plans.
        assert reg.reorder_runs == 3
