"""Tests for the batched executor: grouping, routing, deadlines,
concurrency, and the aggregated serving stats."""

import threading

import numpy as np
import pytest

from repro.serve import BatchExecutor, PlanRegistry, ServeStats, SpmmRequest
from tests.conftest import random_vector_sparse


@pytest.fixture()
def registry(rng, tmp_path):
    reg = PlanRegistry(cache_dir=tmp_path)
    reg.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    reg.register("w1", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    return reg


def _panel(rng, k=128, n=16):
    return rng.standard_normal((k, n)).astype(np.float16)


def _reference(reg, name, b):
    return reg.matrix(name).astype(np.float32) @ b.astype(np.float32)


class TestBatching:
    def test_same_matrix_requests_share_one_launch(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            reqs = [SpmmRequest("w0", _panel(rng, n=8 + i)) for i in range(6)]
            results = ex.run(reqs)
            batches = ex.batch_stats()
        assert len(batches) == 1
        assert batches[0].size == 6
        for res, req in zip(results, reqs):
            assert res.stats.batch_size == 6
            assert res.stats.route == "jigsaw"
            assert res.c.shape == (64, req.b.shape[1])
            np.testing.assert_allclose(
                res.c, _reference(registry, "w0", req.b), rtol=1e-3, atol=1e-2
            )

    def test_full_group_dispatches_at_max_batch(self, registry, rng):
        with BatchExecutor(registry, max_batch=4) as ex:
            results = ex.run([SpmmRequest("w0", _panel(rng)) for _ in range(8)])
            batches = ex.batch_stats()
        assert len(results) == 8
        assert len(batches) == 2
        assert all(b.size == 4 for b in batches)

    def test_different_matrices_do_not_mix(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            reqs = [SpmmRequest(f"w{i % 2}", _panel(rng)) for i in range(6)]
            results = ex.run(reqs)
            batches = ex.batch_stats()
        assert sorted(b.matrix for b in batches) == ["w0", "w1"]
        for res, req in zip(results, reqs):
            np.testing.assert_allclose(
                res.c, _reference(registry, req.matrix, req.b), rtol=1e-3, atol=1e-2
            )

    def test_different_versions_do_not_mix(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            ex.run(
                [
                    SpmmRequest("w0", _panel(rng), version="v3"),
                    SpmmRequest("w0", _panel(rng), version="v4"),
                ]
            )
            batches = ex.batch_stats()
        assert sorted(b.version for b in batches) == ["v3", "v4"]

    def test_linger_window_flushes_without_explicit_flush(self, registry, rng):
        with BatchExecutor(registry, max_batch=8, batch_window_s=0.01) as ex:
            fut = ex.spmm("w0", _panel(rng))
            res = fut.result(timeout=30)  # dispatcher must fire on its own
        assert res.stats.route == "jigsaw"


class TestValidation:
    def test_unknown_matrix_rejected_at_submit(self, registry, rng):
        with BatchExecutor(registry) as ex:
            with pytest.raises(KeyError):
                ex.spmm("missing", _panel(rng))

    def test_bad_panel_shape_rejected(self, registry, rng):
        with BatchExecutor(registry) as ex:
            with pytest.raises(ValueError, match="rows"):
                ex.spmm("w0", rng.standard_normal((64, 8)).astype(np.float16))
            with pytest.raises(ValueError, match="2-D"):
                ex.spmm("w0", np.zeros(128, np.float16))

    def test_unknown_version_rejected(self, registry, rng):
        with BatchExecutor(registry) as ex:
            with pytest.raises(ValueError, match="version"):
                ex.spmm("w0", _panel(rng), version="v9")

    def test_submit_after_close_raises(self, registry, rng):
        ex = BatchExecutor(registry)
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.spmm("w0", _panel(rng))


class TestRouting:
    def test_expired_deadline_takes_dense_fallback(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            b = _panel(rng)
            res = ex.run([SpmmRequest("w0", b, deadline_s=0.0)])[0]
        assert res.stats.route == "dense"
        assert res.stats.deadline_expired
        np.testing.assert_allclose(
            res.c, _reference(registry, "w0", b), rtol=1e-3, atol=1e-2
        )

    def test_generous_deadline_stays_on_jigsaw(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            res = ex.run([SpmmRequest("w0", _panel(rng), deadline_s=60.0)])[0]
        assert res.stats.route == "jigsaw"
        assert not res.stats.deadline_expired

    def test_failed_reorder_routes_to_hybrid(self, registry, rng):
        # A fully dense matrix cannot satisfy 2:4 without growing K, so
        # the reorder reports failure and the batch runs hybrid.
        dense = (np.abs(rng.standard_normal((32, 64))) + 0.5).astype(np.float16)
        registry.register("dense", dense)
        with BatchExecutor(registry, max_batch=4) as ex:
            reqs = [
                SpmmRequest("dense", rng.standard_normal((64, 8)).astype(np.float16))
                for _ in range(3)
            ]
            results = ex.run(reqs)
        for res, req in zip(results, reqs):
            assert res.stats.route == "hybrid"
            np.testing.assert_allclose(
                res.c, _reference(registry, "dense", req.b), rtol=1e-2, atol=0.1
            )

    def test_mixed_expiry_splits_batch(self, registry, rng):
        with BatchExecutor(registry, max_batch=8) as ex:
            reqs = [
                SpmmRequest("w0", _panel(rng), deadline_s=0.0),
                SpmmRequest("w0", _panel(rng)),
                SpmmRequest("w0", _panel(rng), deadline_s=60.0),
            ]
            results = ex.run(reqs)
        routes = [r.stats.route for r in results]
        assert routes == ["dense", "jigsaw", "jigsaw"]
        for res, req in zip(results, reqs):
            np.testing.assert_allclose(
                res.c, _reference(registry, "w0", req.b), rtol=1e-3, atol=1e-2
            )


class TestConcurrency:
    def test_threaded_submitters_all_served_correctly(self, registry, rng):
        panels = [_panel(rng, n=8) for _ in range(32)]
        futures = [None] * len(panels)
        with BatchExecutor(registry, max_batch=4, max_workers=4) as ex:
            def submitter(lo, hi):
                for i in range(lo, hi):
                    futures[i] = ex.spmm(f"w{i % 2}", panels[i])

            threads = [
                threading.Thread(target=submitter, args=(j * 8, (j + 1) * 8))
                for j in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ex.flush()
            results = [f.result(timeout=60) for f in futures]
        for i, res in enumerate(results):
            np.testing.assert_allclose(
                res.c,
                _reference(registry, f"w{i % 2}", panels[i]),
                rtol=1e-3,
                atol=1e-2,
            )
        assert registry.reorder_runs <= 6  # one build per (matrix, block_tile)

    @pytest.mark.slow
    def test_soak_under_small_budget(self, registry, rng, tmp_path):
        # Longer churn: tiny budget forces constant eviction while four
        # pool threads execute; everything must stay correct.
        registry.warm()
        registry.budget_bytes = registry.resident_bytes() // 2
        panels = [_panel(rng, n=8) for _ in range(96)]
        with BatchExecutor(registry, max_batch=8, max_workers=4) as ex:
            reqs = [
                SpmmRequest(f"w{i % 2}", panels[i]) for i in range(len(panels))
            ]
            results = ex.run(reqs, timeout=300)
        for i, res in enumerate(results):
            np.testing.assert_allclose(
                res.c,
                _reference(registry, f"w{i % 2}", panels[i]),
                rtol=1e-3,
                atol=1e-2,
            )
        assert registry.stats.evictions > 0
        assert registry.reorder_runs <= 6  # never recomputes after warm-up


class TestLifecycleEdges:
    def test_double_close_is_idempotent(self, registry):
        ex = BatchExecutor(registry)
        ex.close()
        ex.close()  # must not raise or hang

    def test_submit_after_close_raises_typed_error(self, registry, rng):
        from repro.serve import ExecutorClosedError

        ex = BatchExecutor(registry)
        ex.close()
        with pytest.raises(ExecutorClosedError):
            ex.spmm("w0", _panel(rng))

    def test_close_vs_submit_race_never_hangs(self, registry, rng):
        # Hammer submit from several threads while close() lands in the
        # middle: every submit must either produce a future that
        # completes, or raise the typed closed error — no hangs, no
        # futures stranded pending.
        from repro.serve import ExecutorClosedError

        for _ in range(5):
            ex = BatchExecutor(registry, max_batch=2, max_workers=2)
            futures, errors = [], []
            lock = threading.Lock()
            start = threading.Barrier(5)

            def submitter():
                start.wait()
                for _ in range(10):
                    try:
                        f = ex.spmm("w0", _panel(rng, n=4))
                    except ExecutorClosedError:
                        errors.append(1)
                    else:
                        with lock:
                            futures.append(f)

            def closer():
                start.wait()
                ex.close()

            threads = [threading.Thread(target=submitter) for _ in range(4)]
            threads.append(threading.Thread(target=closer))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ex.close()
            for f in futures:
                res = f.result(timeout=60)  # accepted => must complete
                assert res.c.shape[0] == 64

    def test_run_empty_burst(self, registry):
        with BatchExecutor(registry) as ex:
            assert ex.run([]) == []

    def test_run_does_not_leak_futures_when_a_submit_raises(self, registry, rng):
        # A burst whose 3rd request has a bad shape: run() must cancel or
        # drain the first two before re-raising, so a close() right after
        # cannot block on stranded work and pending drains to zero.
        with BatchExecutor(registry, max_batch=64) as ex:
            reqs = [
                SpmmRequest("w0", _panel(rng)),
                SpmmRequest("w0", _panel(rng)),
                SpmmRequest("w0", np.zeros((3, 3), np.float16)),  # bad rows
            ]
            with pytest.raises(ValueError, match="rows"):
                ex.run(reqs)
            deadline = __import__("time").perf_counter() + 60
            while ex.pending and __import__("time").perf_counter() < deadline:
                __import__("time").sleep(0.005)
            assert ex.pending == 0


class TestZeroWidthPanels:
    def test_zero_width_panel_alone(self, registry, rng):
        with BatchExecutor(registry, max_batch=4) as ex:
            res = ex.run([SpmmRequest("w0", np.zeros((128, 0), np.float16))])[0]
        assert res.c.shape == (64, 0)
        # Every kernel path emits fp32 C; the empty resolution matches.
        assert res.c.dtype == np.float32

    def test_zero_width_mixed_into_batch(self, registry, rng):
        with BatchExecutor(registry, max_batch=4) as ex:
            reqs = [
                SpmmRequest("w0", _panel(rng, n=8)),
                SpmmRequest("w0", np.zeros((128, 0), np.float16)),
                SpmmRequest("w0", _panel(rng, n=4)),
            ]
            results = ex.run(reqs)
        assert [r.c.shape[1] for r in results] == [8, 0, 4]
        for res, req in zip(results, reqs):
            if req.b.shape[1]:
                np.testing.assert_allclose(
                    res.c, _reference(registry, "w0", req.b), rtol=1e-3, atol=1e-2
                )

    def test_zero_width_expired_dense(self, registry, rng):
        with BatchExecutor(registry, max_batch=4) as ex:
            res = ex.run(
                [SpmmRequest("w0", np.zeros((128, 0), np.float16), deadline_s=0.0)]
            )[0]
        assert res.c.shape == (64, 0)
        assert res.stats.deadline_expired


class TestExpiredDense:
    def test_expired_request_runs_on_pool_not_inline(self, registry, rng):
        # The expired request's dense fallback must be handed to the
        # pool, not run inline ahead of the live batch's kernel launch.
        submitted_fns = []
        with BatchExecutor(registry, max_batch=8) as ex:
            real_submit = ex._pool.submit

            def spying_submit(fn, *a, **kw):
                submitted_fns.append(fn.__name__)
                return real_submit(fn, *a, **kw)

            ex._pool.submit = spying_submit
            results = ex.run(
                [
                    SpmmRequest("w0", _panel(rng), deadline_s=0.0),
                    SpmmRequest("w0", _panel(rng)),
                ]
            )
            ex._pool.submit = real_submit
        assert [r.stats.route for r in results] == ["dense", "jigsaw"]
        assert "_run_dense" in submitted_fns


class TestStats:
    def test_serve_stats_aggregation(self, registry, rng):
        with BatchExecutor(registry, max_batch=4) as ex:
            ex.run(
                [SpmmRequest("w0", _panel(rng)) for _ in range(4)]
                + [SpmmRequest("w1", _panel(rng), deadline_s=0.0)]
            )
            stats = ex.stats()
        assert stats.requests == 5
        assert stats.route_counts["jigsaw"] == 4
        assert stats.route_counts["dense"] == 1
        assert stats.deadline_expired == 1
        assert stats.max_batch_size == 4
        assert stats.batch_kernel_us_total > 0
        assert stats.avg_queue_wait_s >= 0
        assert stats.registry_misses >= 1

    def test_render_serving(self, registry, rng):
        from repro.analysis import render_serving

        with BatchExecutor(registry, max_batch=4) as ex:
            ex.run([SpmmRequest("w0", _panel(rng))])
            out = render_serving(ex.stats())
        assert "route: jigsaw" in out
        assert "reorder runs" in out

    def test_request_stats_validates_route(self):
        from repro.serve import RequestStats

        with pytest.raises(ValueError, match="route"):
            RequestStats(request_id=0, matrix="w", route="warp-drive")

    def test_request_stats_validates_registry_outcome(self):
        from repro.serve import RequestStats

        with pytest.raises(ValueError, match="registry outcome"):
            RequestStats(request_id=0, matrix="w", route="jigsaw", registry="maybe")
        # Both documented outcomes construct fine.
        for outcome in ("hit", "miss"):
            RequestStats(request_id=0, matrix="w", route="jigsaw", registry=outcome)

    def test_collect_aggregates_per_route_kernel_time(self):
        from repro.serve import RequestStats

        reqs = [
            RequestStats(0, "w", "jigsaw", kernel_us=10.0, registry="hit"),
            RequestStats(1, "w", "jigsaw", kernel_us=5.0, registry="miss"),
            RequestStats(2, "w", "dense", kernel_us=2.5, registry="hit"),
        ]
        stats = ServeStats.collect(reqs, [])
        assert stats.route_kernel_us == {
            "jigsaw": 15.0,
            "compiled": 0.0,
            "jigsaw@vnm": 0.0,
            "hybrid": 0.0,
            "dense": 2.5,
        }
        assert stats.request_registry_hits == 2
        assert stats.request_registry_misses == 1

    def test_per_route_kernel_time_rendered(self):
        from repro.analysis import render_serving
        from repro.serve import RequestStats

        stats = ServeStats.collect(
            [RequestStats(0, "w", "hybrid", kernel_us=7.0, registry="miss")], []
        )
        out = render_serving(stats)
        assert "kernel time: hybrid" in out
        assert "7.00 us" in out
        assert "request registry hit/miss" in out

    def test_empty_stats(self):
        stats = ServeStats.collect([], [])
        assert stats.avg_batch_size == 0.0
        assert stats.avg_queue_wait_s == 0.0
        assert stats.route_kernel_us == {
            "jigsaw": 0.0,
            "compiled": 0.0,
            "jigsaw@vnm": 0.0,
            "hybrid": 0.0,
            "dense": 0.0,
        }
        assert stats.request_registry_hits == 0
        assert stats.request_registry_misses == 0
