"""Serving-path coverage for the compiled whole-plan route.

The compiled route sits *after* jigsaw in the static fallback chain, so
nothing changes for executors without a scheduler — the cost model has
to discover it empirically.  These tests pin that discovery loop, the
``chain`` override, the fault fall-through, and the serving-path
correctness sweep satellites (registry byte accounting, the unified
clock domain, the cost model's degenerate-observation guards).
"""

import numpy as np
import pytest

from repro.faults import OPEN, FaultPlan
from repro.sched import CostModel, Scheduler
from repro.serve import FALLBACK_CHAIN, BatchExecutor, PlanRegistry, SpmmRequest
from repro.serve.registry import plan_resident_bytes
from tests.conftest import random_vector_sparse


@pytest.fixture()
def registry(rng, tmp_path):
    reg = PlanRegistry(cache_dir=tmp_path)
    reg.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.8, rng=rng))
    return reg


def _panel(rng, k=128, n=8):
    return rng.standard_normal((k, n)).astype(np.float16)


def _reference(reg, name, b):
    return reg.matrix(name).astype(np.float32) @ b.astype(np.float32)


class FakeClock:
    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestCostModelDiscovery:
    def test_cost_model_converges_to_compiled(self, registry, rng):
        # No manual pinning: the static chain still leads with jigsaw,
        # and the exploration cadence must probe the compiled route,
        # measure it cheaper, and keep routing there.
        sched = Scheduler(cost_model=CostModel(explore_every=2))
        with BatchExecutor(registry, max_batch=4, scheduler=sched) as ex:
            for _ in range(12):
                req = SpmmRequest("w0", _panel(rng))
                (res,) = ex.run([req])
                np.testing.assert_allclose(
                    res.c, _reference(registry, "w0", req.b), rtol=1e-2, atol=0.1
                )
            stats = ex.stats()
            batches = ex.batch_stats()
        counts = stats.route_counts
        assert counts["compiled"] > counts["jigsaw"]
        assert counts["compiled"] > counts["hybrid"]
        assert counts["dense"] == 0
        # Steady state: the last non-probe decision routes compiled.
        assert batches[-1].route == "compiled"
        # The model holds a real per-column estimate for the route.
        assert sched.cost_model.samples("w0", "compiled") > 0
        est_c = sched.cost_model.estimate_us("w0", "compiled", 8)
        est_j = sched.cost_model.estimate_us("w0", "jigsaw", 8)
        assert est_c is not None and est_j is not None and est_c < est_j

    def test_static_chain_default_still_leads_with_jigsaw(self, registry, rng):
        # Without a scheduler the executor keeps the static order, so
        # existing serving behavior (and its tests) are unchanged.
        with BatchExecutor(registry) as ex:
            (res,) = ex.run([SpmmRequest("w0", _panel(rng))])
        assert res.stats.route == "jigsaw"


class TestChainOverride:
    def test_pinned_compiled_chain_serves_bit_identical_to_v3(self, registry, rng):
        # v3 runs the fixed BLOCK_TILE=64 tile route — the format the
        # compiled plan lowers, so the two chains must agree bit-for-bit.
        b = _panel(rng, n=16)
        with BatchExecutor(registry, chain=("compiled", "dense")) as ex:
            (res_c,) = ex.run([SpmmRequest("w0", b)])
        with BatchExecutor(registry, chain=("jigsaw", "dense")) as ex:
            (res_t,) = ex.run([SpmmRequest("w0", b, version="v3")])
        assert res_c.stats.route == "compiled"
        assert res_t.stats.route == "jigsaw"
        assert np.array_equal(res_c.c, res_t.c)

    def test_chain_must_terminate_at_dense(self, registry):
        with pytest.raises(ValueError, match="dense"):
            BatchExecutor(registry, chain=("jigsaw", "compiled"))
        with pytest.raises(ValueError, match="dense"):
            BatchExecutor(registry, chain=())

    def test_chain_rejects_unknown_routes(self, registry):
        with pytest.raises(ValueError, match="turbo"):
            BatchExecutor(registry, chain=("turbo", "dense"))

    def test_fallback_chain_order(self):
        assert FALLBACK_CHAIN == ("jigsaw", "compiled", "jigsaw@vnm", "hybrid", "dense")


class TestCompiledFaultFallThrough:
    def test_compiled_faults_fall_through_to_dense(self, registry, rng):
        fp = FaultPlan(seed=0).add("executor.kernel.compiled", probability=1.0)
        with BatchExecutor(
            registry,
            chain=("compiled", "dense"),
            breaker_threshold=2,
            retry_policy=None,
            sleep=lambda s: None,
            fault_plan=fp,
        ) as ex:
            for _ in range(3):
                req = SpmmRequest("w0", _panel(rng))
                (res,) = ex.run([req])
                assert res.stats.route == "dense"
                np.testing.assert_allclose(
                    res.c, _reference(registry, "w0", req.b), rtol=1e-2, atol=0.1
                )
            assert ex.breakers.get("w0", "compiled").state == OPEN


class TestRegistryByteAccounting:
    def test_running_total_tracks_lazy_format_growth(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path)
        for i in range(3):
            reg.register(
                f"w{i}", random_vector_sparse(64, 128, v=4, sparsity=0.8, rng=rng)
            )
        for i in range(3):
            reg.get(f"w{i}")
        before = reg.resident_bytes()
        # v4 autotune builds more BLOCK_TILE formats — the plan grows
        # after admission, and the cached charge must catch up.
        plan = reg.get("w1")
        plan.run(rng.standard_normal((128, 8)).astype(np.float16))
        after = reg.resident_bytes()
        assert after > before
        with reg._lock:
            assert after == sum(
                plan_resident_bytes(p) for p in reg._plans.values()
            )
            assert after == sum(reg._entry_bytes.values())

    def test_total_consistent_across_evictions(self, rng, tmp_path):
        reg = PlanRegistry(cache_dir=tmp_path)
        for i in range(4):
            reg.register(
                f"w{i}", random_vector_sparse(64, 128, v=4, sparsity=0.8, rng=rng)
            )
            reg.get(f"w{i}")
        per_plan = reg.resident_bytes() // 4
        reg.budget_bytes = int(per_plan * 2.5)
        evicted = reg.enforce_budget()
        assert evicted == 2
        assert reg.resident_plans == 2
        with reg._lock:
            assert reg._resident_total == sum(
                plan_resident_bytes(p) for p in reg._plans.values()
            )
            assert set(reg._entry_bytes) == set(reg._plans)

    def test_mru_plan_survives_sub_plan_budget(self, rng, tmp_path):
        # The documented ``len > 1`` guard: a budget smaller than one
        # plan keeps the working plan resident instead of thrashing.
        reg = PlanRegistry(budget_bytes=1, cache_dir=tmp_path)
        reg.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.8, rng=rng))
        reg.register("w1", random_vector_sparse(64, 128, v=4, sparsity=0.8, rng=rng))
        reg.get("w0")
        reg.get("w1")
        assert reg.resident_plans == 1
        assert reg.resident("w1") and not reg.resident("w0")


class TestClockDomain:
    def test_default_breakers_follow_executor_clock(self, registry):
        # One injected clock drives the whole pipeline: advancing it
        # must move breaker cooldowns too (no hidden time.monotonic).
        clock = FakeClock()
        with BatchExecutor(
            registry, breaker_threshold=2, breaker_cooldown_s=10.0, clock=clock
        ) as ex:
            br = ex.breakers.get("w0", "jigsaw")
            br.record_failure()
            br.record_failure()
            assert br.state == OPEN
            assert not br.allow()
            clock.advance(9.0)
            assert not br.allow()  # still cooling on the fake clock
            clock.advance(1.5)
            assert br.allow()  # half-open probe unlocked by fake time

    def test_prebuilt_board_keeps_its_own_clock(self, registry):
        from repro.faults import BreakerBoard

        own = FakeClock()
        board = BreakerBoard(failure_threshold=2, cooldown_s=5.0, clock=own)
        with BatchExecutor(registry, breakers=board, clock=FakeClock()) as ex:
            assert ex.breakers is board


class TestCostModelObserveGuards:
    @pytest.mark.parametrize(
        "us,cols",
        [
            (1.0, 0),  # zero-width batch: would divide by zero
            (1.0, -3),
            (-1.0, 8),  # negative duration
            (float("inf"), 8),
            (float("nan"), 8),
        ],
    )
    def test_degenerate_observations_dropped(self, us, cols):
        cm = CostModel()
        cm.observe("w0", "compiled", us=us, cols=cols)
        assert cm.samples("w0", "compiled") == 0
        assert cm.estimate_us("w0", "compiled", 8) is None

    def test_valid_observation_still_lands(self):
        cm = CostModel()
        cm.observe("w0", "compiled", us=4.0, cols=8)
        assert cm.samples("w0", "compiled") == 1
        assert cm.estimate_us("w0", "compiled", 16) == pytest.approx(8.0)
