"""Burn-rate alerting: window math, re-arm, shedding nudge, export."""

import json

import pytest

from repro.obs import (
    SLO_ALERTS_SCHEMA,
    MetricsRegistry,
    SloPolicy,
    SloTracker,
    alerts_to_jsonl,
    export_alerts_jsonl,
)


def _policy(**kw) -> SloPolicy:
    defaults = dict(
        name="serving",
        deadline_miss_budget=0.1,
        window_s=60.0,
        fast_window_s=5.0,
        fast_burn=5.0,
        slow_burn=2.0,
        min_requests=4,
    )
    defaults.update(kw)
    return SloPolicy(**defaults)


def _tracker(policy=None, **kw) -> SloTracker:
    return SloTracker(
        [policy or _policy()], registry=MetricsRegistry(), **kw
    )


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"name": ""},
            {"deadline_miss_budget": 0.0},
            {"deadline_miss_budget": 1.5},
            {"p99_target_s": 0.0},
            {"fast_window_s": 10.0, "window_s": 5.0},
            {"fast_burn": 0.0},
            {"min_requests": 0},
        ],
    )
    def test_rejects_bad_policies(self, kw):
        with pytest.raises(ValueError):
            _policy(**kw)


class TestBurnRules:
    def test_quiet_traffic_never_alarms(self):
        tr = _tracker()
        for i in range(20):
            assert tr.record("t", 0.01, False, now=float(i)) == []
        assert tr.active_alerts() == []

    def test_fast_burn_fires_on_a_storm(self):
        tr = _tracker()
        fired = []
        for i in range(4):
            fired += tr.record("t", 0.01, True, now=10.0 + i * 0.1)
        rules = {a.rule for a in fired}
        # miss rate 1.0 / budget 0.1 = burn 10 >= both thresholds.
        assert rules == {"fast_burn", "slow_burn"}
        alert = next(a for a in fired if a.rule == "fast_burn")
        assert alert.burn_rate == pytest.approx(10.0)
        assert alert.samples == 4
        assert alert.resolved_at is None

    def test_below_min_requests_never_fires(self):
        tr = _tracker()
        for i in range(3):  # min_requests=4
            assert tr.record("t", 0.01, True, now=10.0 + i * 0.1) == []

    def test_one_alert_per_episode_then_rearm(self):
        tr = _tracker()
        for i in range(6):
            tr.record("t", 0.01, True, now=10.0 + i * 0.1)
        fast = [a for a in tr.alerts if a.rule == "fast_burn"]
        assert len(fast) == 1  # active alert does not refire
        # Clean traffic outside the fast window resolves the fast rule...
        for i in range(20):
            tr.record("t", 0.01, False, now=20.0 + i * 0.1)
        assert fast[0].resolved_at is not None
        # ...and a second storm fires a fresh alert.
        for i in range(6):
            tr.record("t", 0.01, True, now=200.0 + i * 0.1)
        assert len([a for a in tr.alerts if a.rule == "fast_burn"]) == 2

    def test_burn_gauge_exported(self):
        reg = MetricsRegistry()
        tr = SloTracker([_policy()], registry=reg)
        for i in range(4):
            tr.record("t", 0.01, True, now=10.0 + i * 0.1)
        g = reg.gauge("repro_slo_burn_rate")
        assert g.value(policy="serving", window="fast") == pytest.approx(10.0)
        c = reg.counter("repro_slo_alerts_total")
        assert c.value(policy="serving", rule="fast_burn") == 1

    def test_tenant_scoped_policy_ignores_other_tenants(self):
        tr = _tracker(_policy(tenant="svc"))
        for i in range(10):
            tr.record("bulk", 0.01, True, now=10.0 + i * 0.1)
        assert tr.alerts == []
        for i in range(4):
            tr.record("svc", 0.01, True, now=20.0 + i * 0.1)
        assert len(tr.alerts) > 0


class TestP99Rule:
    def test_p99_target_fires_and_resolves(self):
        tr = _tracker(_policy(p99_target_s=0.05))
        for i in range(10):
            tr.record("t", 0.2, False, now=10.0 + i * 0.1)
        p99 = [a for a in tr.alerts if a.rule == "p99"]
        assert len(p99) == 1
        assert p99[0].value == pytest.approx(0.2)
        assert p99[0].threshold == 0.05
        for i in range(100):
            tr.record("t", 0.001, False, now=80.0 + i * 0.1)
        assert p99[0].resolved_at is not None


class TestSheddingNudge:
    class _FakeAdmission:
        def __init__(self):
            self.calls = []

        def set_shedding(self, active):
            self.calls.append(bool(active))

    def test_nudges_on_fire_and_recovery(self):
        adm = self._FakeAdmission()
        tr = SloTracker([_policy()], registry=MetricsRegistry(), admission=adm)
        for i in range(4):
            tr.record("t", 0.01, True, now=10.0 + i * 0.1)
        assert adm.calls[-1] is True
        for i in range(30):
            tr.record("t", 0.01, False, now=100.0 + i * 0.1)
        # Both windows eventually drain the storm samples.
        tr.evaluate(now=300.0)
        assert adm.calls[-1] is False


class TestStatusAndExport:
    def test_to_status_shape(self):
        tr = _tracker()
        for i in range(4):
            tr.record("t", 0.01, True, now=10.0 + i * 0.1)
        status = tr.to_status(recent=2)
        assert status["policies"] == ["serving"]
        assert status["fired_total"] == 2
        assert len(status["active"]) == 2
        assert all(a["schema"] == SLO_ALERTS_SCHEMA for a in status["recent"])

    def test_jsonl_roundtrip(self, tmp_path):
        tr = _tracker()
        for i in range(4):
            tr.record("t", 0.01, True, now=10.0 + i * 0.1)
        out = export_alerts_jsonl(tr.alerts, tmp_path / "alerts.jsonl")
        lines = out.read_text().splitlines()
        assert len(lines) == len(tr.alerts) == 2
        recs = [json.loads(ln) for ln in lines]
        assert all(r["schema"] == SLO_ALERTS_SCHEMA for r in recs)
        assert alerts_to_jsonl([]) == ""
