"""The CI perf-regression gate over BENCH_serving.json artifacts."""

import copy
import json

import pytest

from repro.obs import GateThresholds, compare_bench, compare_bench_files
from repro.obs.validate import main as obs_main


def _scenario(name, miss=0.0, rps=10.0, mix=None, requests=16) -> dict:
    mix = mix or {"jigsaw": requests}
    return {
        "name": name,
        "requests": requests,
        "throughput_rps": rps,
        "latency_s": {"p50": 0.001, "p99": 0.01},
        "deadline_miss_rate": miss,
        "route_mix": mix,
        "throttled": 0,
        "promoted": 0,
    }


def _doc(scenarios, comparison=None) -> dict:
    doc = {"schema": "repro.bench_serving/v1", "scenarios": scenarios}
    if comparison is not None:
        doc["comparison"] = comparison
    return doc


def _baseline() -> dict:
    return _doc(
        [
            _scenario("rigid", miss=0.0, rps=1.5),
            _scenario(
                "format_cost", miss=0.0, rps=15.0, mix={"jigsaw@vnm": 12, "dense": 4}
            ),
        ],
        comparison={
            "baseline": "rigid",
            "contender": "format_cost",
            "baseline_miss_rate": 0.0,
            "contender_miss_rate": 0.0,
            "miss_rate_improvement": 0.0,
            "throughput_speedup": 10.0,
        },
    )


class TestCompareBench:
    def test_identical_reports_pass(self):
        base = _baseline()
        regressions, notes = compare_bench(base, copy.deepcopy(base))
        assert regressions == []
        assert notes == []

    def test_miss_rate_regression(self):
        cur = _baseline()
        cur["scenarios"][0]["deadline_miss_rate"] = 0.5
        regressions, _ = compare_bench(_baseline(), cur)
        assert any("deadline_miss_rate" in r and "rigid" in r for r in regressions)

    def test_miss_rate_within_tolerance_passes(self):
        cur = _baseline()
        cur["scenarios"][0]["deadline_miss_rate"] = 0.2
        regressions, _ = compare_bench(
            _baseline(), cur, GateThresholds(miss_tol=0.25)
        )
        assert regressions == []

    def test_dense_fraction_regression(self):
        cur = _baseline()
        cur["scenarios"][1]["route_mix"] = {"jigsaw@vnm": 4, "dense": 12}
        regressions, _ = compare_bench(_baseline(), cur)
        assert any("dense route fraction" in r for r in regressions)

    def test_speedup_floor_regression(self):
        cur = _baseline()
        cur["comparison"]["throughput_speedup"] = 2.0  # floor is 10 * 0.5
        regressions, _ = compare_bench(_baseline(), cur)
        assert any("throughput_speedup" in r for r in regressions)

    def test_speedup_improvement_is_a_note(self):
        cur = _baseline()
        cur["comparison"]["throughput_speedup"] = 30.0
        regressions, notes = compare_bench(_baseline(), cur)
        assert regressions == []
        assert any("throughput_speedup" in n for n in notes)

    def test_missing_scenario_is_a_regression_new_is_a_note(self):
        cur = _doc(
            [_scenario("rigid"), _scenario("shiny_new")],
        )
        base = _doc([_scenario("rigid"), _scenario("format_cost")])
        regressions, notes = compare_bench(base, cur)
        assert any("missing from current" in r for r in regressions)
        assert any("shiny_new" in n for n in notes)

    def test_absolute_throughput_check_is_opt_in(self):
        cur = _baseline()
        cur["scenarios"][1]["throughput_rps"] = 1.0  # 15 -> 1
        regressions, _ = compare_bench(_baseline(), cur)
        assert regressions == []  # wall-clock is machine-dependent: off by default
        regressions, _ = compare_bench(
            _baseline(), cur, GateThresholds(throughput_tol=0.5)
        )
        assert any("throughput_rps" in r for r in regressions)

    def test_invalid_documents_are_regressions(self):
        regressions, _ = compare_bench({"schema": "nope"}, _baseline())
        assert any(r.startswith("baseline:") for r in regressions)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            GateThresholds(miss_tol=-0.1)
        with pytest.raises(ValueError):
            GateThresholds(speedup_tol=1.5)


class TestCompareBenchFiles:
    def test_unreadable_current_is_a_regression(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_baseline()))
        regressions, _ = compare_bench_files(base, tmp_path / "missing.json")
        assert regressions

    def test_file_pair_passes(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_baseline()))
        regressions, notes = compare_bench_files(base, base)
        assert regressions == []


class TestCliGate:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_clean_pair_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _baseline())
        assert obs_main(["--bench-compare", base, base]) == 0
        assert "holds the line" in capsys.readouterr().out

    def test_degraded_current_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _baseline())
        bad = _baseline()
        bad["scenarios"][0]["deadline_miss_rate"] = 1.0
        bad["comparison"]["baseline_miss_rate"] = 1.0
        cur = self._write(tmp_path, "cur.json", bad)
        assert obs_main(["--bench-compare", base, cur]) != 0
        assert "REGRESSION" in capsys.readouterr().err

    def test_tolerance_flags_are_forwarded(self, tmp_path):
        base = self._write(tmp_path, "base.json", _baseline())
        drift = _baseline()
        drift["scenarios"][0]["deadline_miss_rate"] = 0.2
        cur = self._write(tmp_path, "cur.json", drift)
        assert obs_main(["--bench-compare", base, cur]) != 0
        assert (
            obs_main(["--bench-compare", base, cur, "--miss-tol", "0.25"]) == 0
        )

    def test_gate_accepts_the_committed_artifact(self, capsys):
        # The real committed baseline must be self-consistent under the
        # gate (this is exactly what CI runs before the live comparison).
        assert (
            obs_main(["--bench-compare", "BENCH_serving.json", "BENCH_serving.json"])
            == 0
        )
        capsys.readouterr()
