"""Tests for counters, gauges, histograms, and the registry."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricTypeError,
    get_metrics,
    set_metrics,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments_per_label_set(self, registry):
        c = registry.counter("repro_requests_total")
        c.inc(route="jigsaw")
        c.inc(2, route="jigsaw")
        c.inc(route="dense")
        assert c.value(route="jigsaw") == 3
        assert c.value(route="dense") == 1
        assert c.value(route="hybrid") == 0

    def test_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_label_order_does_not_matter(self, registry):
        c = registry.counter("c_total")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_rejects_bad_names(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok").inc(**{"0bad": "x"})


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("repro_pending")
        g.set(5)
        g.add(-2)
        assert g.value() == 3

    def test_samples_sorted_by_labels(self, registry):
        g = registry.gauge("g")
        g.set(2, k="b")
        g.set(1, k="a")
        assert g.samples() == [({"k": "a"}, 1.0), ({"k": "b"}, 2.0)]


class TestHistogram:
    def test_observe_and_count(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count() == 4
        assert h.total() == 105.0

    def test_quantile_interpolates_within_bucket(self, registry):
        h = registry.histogram("h", buckets=(0.0, 10.0))
        # 10 observations uniformly inside (0, 10]: rank q*10 lands at
        # depth frac = q into the bucket -> estimate ~ q * 10.
        for _ in range(10):
            h.observe(5.0)
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_exact_at_bucket_edges(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        h.observe(2.0)
        assert h.quantile(0.5) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_empty_histogram_estimates_zero(self, registry):
        h = registry.histogram("h")
        assert h.quantile(0.99) == 0.0
        assert h.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_inf_bucket_clamps_to_largest_finite_bound(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 1.0

    def test_percentiles_are_monotone(self, registry):
        h = registry.histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
        for i in range(100):
            h.observe(0.001 * (i + 1))
        p = h.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_rejects_bad_buckets(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("c", buckets=(1.0, float("inf")))

    def test_q_out_of_range(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_is_a_typed_error(self, registry):
        registry.counter("m")
        with pytest.raises(MetricTypeError):
            registry.gauge("m")
        with pytest.raises(MetricTypeError):
            registry.histogram("m")

    def test_metrics_sorted_and_reset(self, registry):
        registry.counter("b")
        registry.gauge("a")
        assert [m.name for m in registry.metrics()] == ["a", "b"]
        registry.reset()
        assert registry.metrics() == []
        assert registry.get("a") is None

    def test_global_swap_restores(self):
        mine = MetricsRegistry()
        prev = set_metrics(mine)
        try:
            assert get_metrics() is mine
        finally:
            set_metrics(prev)
        assert get_metrics() is prev

    def test_counter_is_thread_safe(self, registry):
        c = registry.counter("c")

        def hammer():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000

    def test_kind_tags(self):
        assert Counter("c").kind == "counter"
        assert Gauge("g").kind == "gauge"
        assert Histogram("h").kind == "histogram"
