"""Tests for the tracer: span lifecycle, parenting, events, arming."""

import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    ManualClock,
    MetricsRegistry,
    NullTracer,
    Span,
    SpanBuffer,
    Tracer,
    get_tracer,
    set_metrics,
    set_tracer,
    use_tracer,
)


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock=clock)


class TestManualClock:
    def test_advances_monotonically(self, clock):
        assert clock() == 0.0
        clock.advance(1.5)
        assert clock() == 1.5

    def test_rejects_negative_advance(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-0.1)


class TestSpanLifecycle:
    def test_start_end_records_into_buffer(self, tracer, clock):
        s = tracer.start_span("work", attrs={"k": 1})
        clock.advance(2.0)
        tracer.end_span(s)
        assert len(tracer.buffer) == 1
        assert s.duration_s == 2.0
        assert s.attrs == {"k": 1}
        assert s.trace_id and s.span_id
        assert s.parent_id is None

    def test_end_is_idempotent(self, tracer, clock):
        s = tracer.start_span("work")
        tracer.end_span(s)
        clock.advance(5.0)
        tracer.end_span(s)
        assert len(tracer.buffer) == 1
        assert s.end_s == 0.0

    def test_end_clamps_to_start(self, tracer):
        s = tracer.start_span("work", start_s=10.0)
        tracer.end_span(s, end_s=7.0)
        assert s.end_s == s.start_s == 10.0

    def test_unended_span_is_not_recorded(self, tracer):
        tracer.start_span("pending")
        assert len(tracer.buffer) == 0


class TestParenting:
    def test_context_manager_nesting_auto_parents(self, tracer):
        with tracer.span("outer") as outer:
            assert tracer.current_span is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert tracer.current_span is None
        assert [s.name for s in tracer.buffer.snapshot()] == ["inner", "outer"]

    def test_sibling_traces_get_distinct_trace_ids(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.buffer.snapshot()
        assert a.trace_id != b.trace_id

    def test_explicit_parent_overrides_ambient(self, tracer):
        root = tracer.start_span("root")
        with tracer.span("ambient"):
            child = tracer.start_span("child", parent=root)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_add_span_records_retroactively(self, tracer):
        root = tracer.start_span("root", start_s=0.0)
        child = tracer.add_span("child", start_s=1.0, end_s=3.0, parent=root)
        assert child.ended
        assert child.duration_s == 2.0
        assert child.parent_id == root.span_id
        assert tracer.buffer.snapshot() == [child]

    def test_exception_marks_error_and_still_records(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (s,) = tracer.buffer.snapshot()
        assert s.attrs["error"] is True
        assert s.ended

    def test_parenting_is_per_thread(self, tracer):
        seen = {}

        def worker():
            seen["ambient"] = tracer.current_span

        with tracer.span("outer"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["ambient"] is None


class TestEvents:
    def test_event_attaches_to_ambient_span(self, tracer, clock):
        with tracer.span("outer") as s:
            clock.advance(1.0)
            tracer.event("retry", {"attempt": 1})
        assert [e.name for e in s.events] == ["retry"]
        assert s.events[0].t_s == 1.0
        assert s.events[0].attrs == {"attempt": 1}

    def test_event_without_scope_records_instant_root_span(self, tracer, clock):
        clock.advance(4.0)
        tracer.event("breaker.transition", {"to": "open"})
        (s,) = tracer.buffer.snapshot()
        assert s.name == "breaker.transition"
        assert s.start_s == s.end_s == 4.0
        assert s.parent_id is None


class TestBuffer:
    def test_drain_empties(self):
        buf = SpanBuffer()
        buf.add(Span("t1", "s1", None, "x", 0.0, end_s=1.0))
        assert len(buf) == 1
        assert [s.name for s in buf.drain()] == ["x"]
        assert len(buf) == 0

    def test_snapshot_is_a_copy(self):
        buf = SpanBuffer()
        buf.add(Span("t1", "s1", None, "x", 0.0, end_s=1.0))
        snap = buf.snapshot()
        buf.clear()
        assert len(snap) == 1


class TestBoundedBuffer:
    def _span(self, name):
        return Span("t1", name, None, name, 0.0, end_s=1.0)

    def test_full_buffer_drops_the_incoming_span(self):
        reg = MetricsRegistry()
        prev = set_metrics(reg)
        try:
            buf = SpanBuffer(max_spans=2)
            for name in ("a", "b", "c", "d"):
                buf.add(self._span(name))
            # Earliest spans win: roots outlive their children in a drop.
            assert [s.name for s in buf.snapshot()] == ["a", "b"]
            assert buf.dropped == 2
            c = reg.counter("repro_obs_spans_dropped_total")
            assert c.value() == 2
        finally:
            set_metrics(prev)

    def test_drain_reopens_the_buffer(self):
        buf = SpanBuffer(max_spans=1)
        buf.add(self._span("a"))
        buf.add(self._span("b"))
        assert buf.dropped == 1
        buf.drain()
        buf.add(self._span("c"))
        assert [s.name for s in buf.snapshot()] == ["c"]

    def test_none_means_unbounded(self):
        buf = SpanBuffer(max_spans=None)
        for i in range(1000):
            buf.add(self._span(f"s{i}"))
        assert len(buf) == 1000
        assert buf.dropped == 0

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_bound(self, bad):
        with pytest.raises(ValueError):
            SpanBuffer(max_spans=bad)

    def test_tracer_honors_a_bounded_buffer(self):
        t = Tracer(buffer=SpanBuffer(max_spans=3))
        for i in range(5):
            t.add_span(f"s{i}", 0.0, 1.0)
        assert len(t.buffer) == 3
        assert t.buffer.dropped == 2


class TestArming:
    def test_default_global_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_tracer_is_inert(self):
        t = NullTracer()
        with t.span("nothing") as s:
            assert s is NULL_SPAN
            s.set_attr("k", 1)
            s.add_event("e", 0.0)
        assert t.add_span("x", 0.0, 1.0) is NULL_SPAN
        t.event("e")
        assert len(t.buffer) == 0
        assert t.current_span is None

    def test_use_tracer_scopes_and_restores(self):
        armed = Tracer(clock=ManualClock())
        with use_tracer(armed) as t:
            assert get_tracer() is armed is t
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        armed = Tracer(clock=ManualClock())
        prev = set_tracer(armed)
        try:
            assert prev is NULL_TRACER
            assert get_tracer() is armed
        finally:
            set_tracer(prev)

    def test_set_tracer_none_disarms(self):
        prev = set_tracer(None)
        try:
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(prev)
