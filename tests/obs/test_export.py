"""Tests for the exporters: JSONL spans and Prometheus exposition.

The exposition test is a golden-file comparison: the exact text a small,
fully-specified registry must render, covering HELP/TYPE comments, label
escaping, and cumulative histogram buckets ending at ``+Inf``.
"""

import json

import pytest

from repro.obs import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    escape_label_value,
    export_metrics,
    export_spans_jsonl,
    render_prometheus,
    spans_to_jsonl,
    validate_prometheus_text,
    validate_spans_jsonl,
)

GOLDEN_EXPOSITION = """\
# HELP repro_latency_seconds request latency
# TYPE repro_latency_seconds histogram
repro_latency_seconds_bucket{le="0.1",route="jigsaw"} 2
repro_latency_seconds_bucket{le="1",route="jigsaw"} 3
repro_latency_seconds_bucket{le="+Inf",route="jigsaw"} 4
repro_latency_seconds_sum{route="jigsaw"} 8.90625
repro_latency_seconds_count{route="jigsaw"} 4
# HELP repro_pending_requests queued requests
# TYPE repro_pending_requests gauge
repro_pending_requests 3
# HELP repro_requests_total requests served
# TYPE repro_requests_total counter
repro_requests_total{matrix="w1",route="dense"} 1
repro_requests_total{matrix="w\\\\0 \\"a\\"\\nx",route="jigsaw"} 2
"""


def _golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_requests_total", help="requests served")
    c.inc(2, route="jigsaw", matrix='w\\0 "a"\nx')
    c.inc(route="dense", matrix="w1")
    reg.gauge("repro_pending_requests", help="queued requests").set(3)
    h = reg.histogram(
        "repro_latency_seconds", help="request latency", buckets=(0.1, 1.0)
    )
    # Exactly representable observations so the golden _sum is stable.
    for v in (0.0625, 0.09375, 0.75, 8.0):
        h.observe(v, route="jigsaw")
    return reg


class TestPrometheusGolden:
    def test_exact_exposition_text(self):
        assert render_prometheus(_golden_registry()) == GOLDEN_EXPOSITION

    def test_golden_text_passes_validator(self):
        assert validate_prometheus_text(GOLDEN_EXPOSITION) == []

    def test_buckets_are_cumulative_and_end_at_count(self):
        lines = render_prometheus(_golden_registry()).splitlines()
        buckets = [
            float(ln.rsplit(" ", 1)[1])
            for ln in lines
            if ln.startswith("repro_latency_seconds_bucket")
        ]
        assert buckets == sorted(buckets)
        count = next(
            float(ln.rsplit(" ", 1)[1])
            for ln in lines
            if ln.startswith("repro_latency_seconds_count")
        )
        assert buckets[-1] == count

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_export_writes_file(self, tmp_path):
        out = tmp_path / "metrics.prom"
        text = export_metrics(_golden_registry(), out)
        assert out.read_text() == text == GOLDEN_EXPOSITION


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "raw,escaped",
        [
            ('plain', 'plain'),
            ('back\\slash', 'back\\\\slash'),
            ('quo"te', 'quo\\"te'),
            ('new\nline', 'new\\nline'),
            # Braces and = are legal inside quoted values per exposition
            # format 0.0.4 — they must pass through unescaped.
            ('x}y', 'x}y'),
            ('a{b=c', 'a{b=c'),
        ],
    )
    def test_escape_label_value(self, raw, escaped):
        assert escape_label_value(raw) == escaped

    def test_hostile_label_values_roundtrip(self):
        """Values with newlines and braces render to validator-clean text."""
        reg = MetricsRegistry()
        c = reg.counter("repro_requests_total", help="requests served")
        c.inc(matrix="a\nb", route="x}y")
        c.inc(2, matrix='q="v"', route="a{b")
        text = render_prometheus(reg)
        assert 'matrix="a\\nb",route="x}y"' in text
        assert 'matrix="q=\\"v\\"",route="a{b"' in text
        assert "\na\n" not in text  # the newline never splits a sample line
        assert validate_prometheus_text(text) == []

    def test_scientific_notation_values_validate(self):
        """Tiny histogram sums render like ``1.2e-06`` — legal values."""
        reg = MetricsRegistry()
        h = reg.histogram("repro_kernel_seconds", buckets=(0.001,))
        h.observe(1.2260727349011003e-06, route="dense")
        reg.gauge("repro_drift").set(-3e8)
        text = render_prometheus(reg)
        assert "e-06" in text
        assert validate_prometheus_text(text) == []


class TestSpanJsonl:
    def _traced(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", attrs={"k": "v"}):
            clock.advance(1.0)
            tracer.event("tick")
            with tracer.span("inner"):
                clock.advance(0.5)
        return tracer

    def test_roundtrips_through_json(self):
        tracer = self._traced()
        lines = spans_to_jsonl(tracer).splitlines()
        recs = [json.loads(ln) for ln in lines]
        assert [r["name"] for r in recs] == ["inner", "outer"]
        inner, outer = recs
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"]
        assert outer["attrs"] == {"k": "v"}
        assert outer["events"][0]["name"] == "tick"

    def test_export_counts_and_validates(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        n = export_spans_jsonl(self._traced(), out)
        assert n == 2
        assert validate_spans_jsonl(out.read_text()) == []

    def test_accepts_buffer_and_iterable_sources(self):
        tracer = self._traced()
        from_tracer = spans_to_jsonl(tracer)
        from_buffer = spans_to_jsonl(tracer.buffer)
        from_list = spans_to_jsonl(tracer.buffer.snapshot())
        assert from_tracer == from_buffer == from_list
