"""Tests for the artifact validator: span schema and exposition grammar."""

import json

from repro.obs import (
    validate_prometheus_text,
    validate_span_records,
    validate_spans_jsonl,
)
from repro.obs.validate import main


def _span(**over):
    rec = {
        "trace_id": "t1",
        "span_id": "s1",
        "parent_id": None,
        "name": "work",
        "start_s": 0.0,
        "end_s": 1.0,
        "attrs": {},
        "events": [],
    }
    rec.update(over)
    return rec


class TestSpanValidation:
    def test_clean_records_pass(self):
        recs = [
            _span(),
            _span(span_id="s2", parent_id="s1", name="child"),
        ]
        assert validate_span_records(recs) == []

    def test_missing_fields(self):
        errs = validate_span_records([{"name": "x"}])
        assert len(errs) == 1 and "missing fields" in errs[0]

    def test_unended_span(self):
        errs = validate_span_records([_span(end_s=None)])
        assert any("never ended" in e for e in errs)

    def test_end_before_start(self):
        errs = validate_span_records([_span(start_s=5.0, end_s=1.0)])
        assert any("ends before it starts" in e for e in errs)

    def test_duplicate_span_id(self):
        errs = validate_span_records([_span(), _span()])
        assert any("duplicate span_id" in e for e in errs)

    def test_unresolvable_parent(self):
        errs = validate_span_records([_span(parent_id="missing")])
        assert any("does not resolve" in e for e in errs)

    def test_orphan_trace_without_root(self):
        recs = [
            _span(parent_id="s2"),
            _span(span_id="s2", parent_id="s1"),
        ]
        errs = validate_span_records(recs)
        assert any("orphan trace" in e for e in errs)

    def test_event_outside_span_interval(self):
        errs = validate_span_records(
            [_span(events=[{"name": "late", "t_s": 2.0, "attrs": {}}])]
        )
        assert any("outside span" in e for e in errs)

    def test_jsonl_reports_bad_lines(self):
        text = json.dumps(_span()) + "\nnot json\n"
        errs = validate_spans_jsonl(text)
        assert any("invalid JSON" in e for e in errs)

    def test_jsonl_skips_blank_lines(self):
        text = json.dumps(_span()) + "\n\n"
        assert validate_spans_jsonl(text) == []


class TestExpositionValidation:
    def test_clean_text_passes(self):
        text = (
            "# TYPE repro_x_total counter\n"
            'repro_x_total{route="jigsaw"} 3\n'
        )
        assert validate_prometheus_text(text) == []

    def test_sample_without_type_comment(self):
        errs = validate_prometheus_text("repro_x_total 3\n")
        assert any("no TYPE comment" in e for e in errs)

    def test_malformed_sample_line(self):
        errs = validate_prometheus_text(
            "# TYPE repro_x counter\nrepro_x three\n"
        )
        assert any("malformed sample" in e for e in errs)

    def test_malformed_type_comment(self):
        errs = validate_prometheus_text("# TYPE repro_x summary\n")
        assert any("malformed TYPE" in e for e in errs)

    def test_noncumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
        )
        errs = validate_prometheus_text(text)
        assert any("not cumulative" in e for e in errs)

    def test_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        errs = validate_prometheus_text(text)
        assert any("missing +Inf" in e for e in errs)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 2\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        errs = validate_prometheus_text(text)
        assert any("!= " in e and "_count" in e for e in errs)

    def test_escaped_label_values_parse(self):
        text = (
            "# TYPE repro_x counter\n"
            'repro_x{matrix="w\\\\0 \\"a\\"\\nx"} 1\n'
        )
        assert validate_prometheus_text(text) == []


class TestCliEntry:
    def test_ok_artifacts_exit_zero(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        spans.write_text(json.dumps(_span()) + "\n")
        prom = tmp_path / "metrics.prom"
        prom.write_text("# TYPE repro_x counter\nrepro_x 1\n")
        assert main(["--spans", str(spans), "--metrics", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "1 spans ok" in out and "exposition ok" in out

    def test_bad_artifact_exits_nonzero(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        spans.write_text(json.dumps(_span(end_s=None)) + "\n")
        assert main(["--spans", str(spans)]) == 1
        assert "never ended" in capsys.readouterr().err
