"""Merge/delta semantics of metrics snapshots and the fleet fold.

The property tests pin the merge algebra the fleet depends on: counters
add, gauges last-write-win by capture time, histogram buckets add
element-wise, and mismatched bucket bounds raise the typed error instead
of silently inventing data.
"""

import json

import pytest

from repro.obs import (
    METRICS_SNAPSHOT_SCHEMA,
    BucketMismatchError,
    FleetMetrics,
    MetricsRegistry,
    MetricTypeError,
    SnapshotSchemaError,
    SnapshotShipper,
    counter_by,
    counter_total,
    diff_snapshot,
    histogram_percentiles,
    histogram_quantile,
    validate_metrics_snapshot,
)


def _hist_count(reg: MetricsRegistry, name: str) -> int:
    """Total observations across every label set of one histogram."""
    metric = reg.get(name)
    return sum(n for *_, n in metric.series()) if metric is not None else 0


def _worker_registry(jigsaw: int, dense: int, lat: list[float]) -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_requests_total", help="requests")
    if jigsaw:
        c.inc(jigsaw, route="jigsaw")
    if dense:
        c.inc(dense, route="dense")
    h = reg.histogram("repro_kernel_seconds", buckets=(0.001, 0.01, 0.1))
    for v in lat:
        h.observe(v, route="jigsaw")
    reg.gauge("repro_pending").set(float(jigsaw + dense))
    return reg


class TestSnapshotRoundTrip:
    def test_snapshot_is_schema_stamped_json(self):
        snap = _worker_registry(3, 1, [0.005]).snapshot(captured_at=123.0)
        assert snap["schema"] == METRICS_SNAPSHOT_SCHEMA
        assert snap["captured_at"] == 123.0
        json.dumps(snap)  # plain JSON, no numpy/dataclass leakage
        assert validate_metrics_snapshot(snap) == []

    def test_merge_reconstructs_the_source(self):
        src = _worker_registry(3, 1, [0.005, 0.05])
        dst = MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        assert dst.counter("repro_requests_total").value(route="jigsaw") == 3
        assert dst.counter("repro_requests_total").value(route="dense") == 1
        assert dst.histogram("repro_kernel_seconds").count(route="jigsaw") == 2
        assert dst.gauge("repro_pending").value() == 4.0

    def test_extra_labels_stamped_and_not_spoofable(self):
        src = MetricsRegistry()
        # A worker-side "shard" label must lose to the router's stamp.
        src.counter("c_total").inc(5, shard="lie", route="jigsaw")
        dst = MetricsRegistry()
        dst.merge_snapshot(src.snapshot(), extra_labels={"shard": "2"})
        assert dst.counter("c_total").value(shard="2", route="jigsaw") == 5
        assert dst.counter("c_total").value(shard="lie", route="jigsaw") == 0


class TestMergeAlgebra:
    def test_counters_add(self):
        dst = MetricsRegistry()
        dst.merge_snapshot(_worker_registry(3, 1, []).snapshot())
        dst.merge_snapshot(_worker_registry(2, 0, []).snapshot())
        assert dst.counter("repro_requests_total").value(route="jigsaw") == 5
        assert dst.counter("repro_requests_total").value(route="dense") == 1

    def test_counter_merge_commutes(self):
        a = _worker_registry(3, 1, [0.005]).snapshot(captured_at=1.0)
        b = _worker_registry(4, 2, [0.05, 0.2]).snapshot(captured_at=2.0)
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge_snapshot(a)
        ab.merge_snapshot(b)
        ba.merge_snapshot(b)
        ba.merge_snapshot(a)
        for reg in (ab, ba):
            assert reg.counter("repro_requests_total").value(route="jigsaw") == 7
            assert _hist_count(reg, "repro_kernel_seconds") == 3
        assert (
            ab.histogram("repro_kernel_seconds").total(route="jigsaw")
            == ba.histogram("repro_kernel_seconds").total(route="jigsaw")
        )

    def test_disjoint_label_merge_equals_union(self):
        # Two shards' series under distinct (shard,) labels: every number
        # in either source appears unchanged in the fold.
        dst = MetricsRegistry()
        for shard, jigsaw in ((0, 3), (1, 5)):
            dst.merge_snapshot(
                _worker_registry(jigsaw, 0, []).snapshot(),
                extra_labels={"shard": str(shard)},
            )
        c = dst.counter("repro_requests_total")
        assert c.value(route="jigsaw", shard="0") == 3
        assert c.value(route="jigsaw", shard="1") == 5
        assert counter_total(dst, "repro_requests_total") == 8

    def test_gauge_merge_is_lww_by_captured_at(self):
        src_old, src_new = MetricsRegistry(), MetricsRegistry()
        src_old.gauge("g").set(1.0)
        src_new.gauge("g").set(2.0)
        newer_last = MetricsRegistry()
        newer_last.merge_snapshot(src_old.snapshot(captured_at=10.0))
        newer_last.merge_snapshot(src_new.snapshot(captured_at=20.0))
        assert newer_last.gauge("g").value() == 2.0
        older_last = MetricsRegistry()
        older_last.merge_snapshot(src_new.snapshot(captured_at=20.0))
        older_last.merge_snapshot(src_old.snapshot(captured_at=10.0))
        assert older_last.gauge("g").value() == 2.0  # stale write ignored

    def test_histogram_buckets_add_elementwise(self):
        dst = MetricsRegistry()
        dst.merge_snapshot(_worker_registry(0, 0, [0.0005, 0.005]).snapshot())
        dst.merge_snapshot(_worker_registry(0, 0, [0.05, 0.5]).snapshot())
        h = dst.histogram("repro_kernel_seconds")
        assert h.count(route="jigsaw") == 4
        assert h.total(route="jigsaw") == pytest.approx(0.5555)
        _, counts, _, n = h.series()[0]
        # (<=1ms, <=10ms, <=100ms, +Inf) one observation each.
        assert counts == [1, 1, 1, 1]
        assert n == 4

    def test_histogram_bucket_mismatch_is_typed(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(1.0, 4.0)).observe(1.5)
        with pytest.raises(BucketMismatchError):
            dst.merge_snapshot(src.snapshot())

    def test_kind_clash_is_typed(self):
        src = MetricsRegistry()
        src.counter("m_total").inc()
        dst = MetricsRegistry()
        dst.gauge("m_total").set(1.0)
        with pytest.raises(MetricTypeError):
            dst.merge_snapshot(src.snapshot())

    @pytest.mark.parametrize(
        "bad",
        [
            "not a dict",
            {"schema": "wrong/v9", "metrics": []},
            {"schema": METRICS_SNAPSHOT_SCHEMA, "metrics": [{"kind": "counter"}]},
            {
                "schema": METRICS_SNAPSHOT_SCHEMA,
                "metrics": [{"name": "x", "kind": "mystery"}],
            },
            {
                "schema": METRICS_SNAPSHOT_SCHEMA,
                "metrics": [{"name": "h", "kind": "histogram", "series": []}],
            },
        ],
    )
    def test_malformed_snapshots_raise_schema_error(self, bad):
        with pytest.raises(SnapshotSchemaError):
            MetricsRegistry().merge_snapshot(bad)

    def test_random_merges_preserve_totals(self):
        # Seeded property sweep: for any pile of worker snapshots, the
        # fold's counter total equals the sum of the sources' totals.
        import random

        rng = random.Random(7)
        for _ in range(20):
            sources = [
                _worker_registry(
                    rng.randrange(0, 10),
                    rng.randrange(0, 10),
                    [rng.random() for _ in range(rng.randrange(0, 5))],
                )
                for _ in range(rng.randrange(1, 5))
            ]
            dst = MetricsRegistry()
            for i, src in enumerate(sources):
                dst.merge_snapshot(src.snapshot(), extra_labels={"shard": str(i)})
            want = sum(
                counter_total(s, "repro_requests_total") for s in sources
            )
            assert counter_total(dst, "repro_requests_total") == want
            want_n = sum(_hist_count(s, "repro_kernel_seconds") for s in sources)
            assert _hist_count(dst, "repro_kernel_seconds") == want_n


class TestDiffSnapshot:
    def test_first_delta_is_the_full_snapshot(self):
        snap = _worker_registry(3, 1, [0.005]).snapshot(captured_at=1.0)
        assert diff_snapshot(snap, None) is snap

    def test_delta_carries_only_accrual(self):
        reg = _worker_registry(3, 0, [0.005])
        first = reg.snapshot(captured_at=1.0)
        reg.counter("repro_requests_total").inc(2, route="jigsaw")
        delta = diff_snapshot(reg.snapshot(captured_at=2.0), first)
        counters = {m["name"]: m for m in delta["metrics"]}
        rows = counters["repro_requests_total"]["series"]
        assert rows == [{"labels": {"route": "jigsaw"}, "value": 2.0}]
        # Unchanged histogram series are dropped from the delta.
        assert "repro_kernel_seconds" not in counters

    def test_idle_delta_is_empty(self):
        reg = _worker_registry(3, 1, [0.005])
        first = reg.snapshot(captured_at=1.0)
        delta = diff_snapshot(reg.snapshot(captured_at=2.0), first)
        assert [m for m in delta["metrics"] if m["kind"] != "gauge"] == []

    def test_counter_reset_ships_absolute_restart_value(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(10)
        first = reg.snapshot(captured_at=1.0)
        reg.reset()
        reg.counter("c_total").inc(4)  # fresh process restarted from zero
        delta = diff_snapshot(reg.snapshot(captured_at=2.0), first)
        rows = delta["metrics"][0]["series"]
        assert rows == [{"labels": {}, "value": 4.0}]

    def test_deltas_recompose_to_the_source(self):
        reg = MetricsRegistry()
        shipper = SnapshotShipper(registry=reg, clock=lambda: 1.0)
        dst = MetricsRegistry()
        for round_ in range(3):
            reg.counter("c_total").inc(round_ + 1, route="jigsaw")
            reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
            dst.merge_snapshot(shipper.delta(captured_at=float(round_)))
        assert dst.counter("c_total").value(route="jigsaw") == 6
        assert _hist_count(dst, "h") == 3


class TestFleetMetrics:
    def test_ingest_folds_with_shard_incarnation_labels(self):
        fleet_reg = MetricsRegistry()
        fleet = FleetMetrics(registry=fleet_reg)
        assert fleet.ingest(_worker_registry(3, 0, []).snapshot(), 1, 2)
        c = fleet_reg.counter("repro_requests_total")
        assert c.value(route="jigsaw", shard="1", incarnation="2") == 3
        assert fleet.snapshots_ingested == 1
        assert (
            fleet_reg.counter("repro_fleet_snapshots_total").value(shard="1") == 1
        )

    def test_empty_and_non_dict_deltas_are_liveness_only(self):
        fleet = FleetMetrics(registry=MetricsRegistry())
        empty = {"schema": METRICS_SNAPSHOT_SCHEMA, "captured_at": 1.0, "metrics": []}
        assert fleet.ingest(empty, 0, 0) is False
        assert fleet.ingest(None, 0, 0) is False
        assert fleet.snapshots_ingested == 0
        assert fleet.ingest_errors == 0
        assert fleet.last_ingest_age_s(0) is not None
        assert fleet.last_ingest_age_s(9) is None

    def test_malformed_delta_counted_not_raised(self):
        reg = MetricsRegistry()
        fleet = FleetMetrics(registry=reg)
        bad = {
            "schema": METRICS_SNAPSHOT_SCHEMA,
            "metrics": [{"name": "x", "kind": "mystery", "series": []}],
        }
        assert fleet.ingest(bad, 3, 0) is False
        assert fleet.ingest_errors == 1
        assert reg.counter("repro_fleet_ingest_errors_total").value(shard="3") == 1

    def test_note_crash_counts(self):
        reg = MetricsRegistry()
        fleet = FleetMetrics(registry=reg)
        fleet.note_crash(0, 4)
        assert fleet.dropped_on_crash == 1
        assert (
            reg.counter("repro_fleet_dropped_on_crash_total").value(shard="0") == 1
        )


class TestAggregation:
    def _fleet(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        fleet = FleetMetrics(registry=reg)
        fleet.ingest(_worker_registry(3, 1, [0.005, 0.005]).snapshot(), 0, 0)
        fleet.ingest(_worker_registry(5, 0, [0.05, 0.05]).snapshot(), 1, 0)
        # A router-local series with no shard label must be excludable.
        reg.counter("repro_requests_total").inc(100, route="dense")
        return reg

    def test_counter_total_with_where_and_require(self):
        reg = self._fleet()
        assert counter_total(reg, "repro_requests_total", require=("shard",)) == 9
        assert (
            counter_total(
                reg, "repro_requests_total", {"shard": "1"}, require=("shard",)
            )
            == 5
        )
        assert counter_total(reg, "repro_requests_total") == 109
        assert counter_total(reg, "no_such_total") == 0.0

    def test_counter_by_groups_and_buckets_unlabeled(self):
        reg = self._fleet()
        mix = counter_by(reg, "repro_requests_total", "route", require=("shard",))
        assert mix == {"jigsaw": 8, "dense": 1}
        by_shard = counter_by(reg, "repro_requests_total", "shard")
        assert by_shard[""] == 100  # the router-local series

    def test_histogram_quantiles_across_shards(self):
        reg = self._fleet()
        # shard 0 observed 5ms twice, shard 1 50ms twice: the fleet p50
        # sits in the 10ms bucket boundary region, p99 in the 100ms one.
        q50 = histogram_quantile(reg, "repro_kernel_seconds", 0.5, require=("shard",))
        q99 = histogram_quantile(reg, "repro_kernel_seconds", 0.99, require=("shard",))
        assert 0.001 < q50 <= 0.01 + 1e-9  # interpolates to the 10ms bound
        assert 0.01 < q99 <= 0.1 + 1e-9
        only0 = histogram_percentiles(
            reg, "repro_kernel_seconds", {"shard": "0"}, require=("shard",)
        )
        assert only0["p99"] <= 0.01
        assert histogram_percentiles(reg, "absent") == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }
