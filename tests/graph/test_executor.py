"""GraphExecutor: pipelined DAG execution is bit-identical to the
sequential reference and to the direct plan API, across batching,
diamond topologies, mixed-width batching, and mid-stream dynamic
updates; failures propagate; traces partition the request interval."""

import numpy as np
import pytest

from repro.core import JigsawPlan, SparseModel
from repro.graph import GraphExecutor, ModelGraph
from repro.obs import MetricsRegistry, Tracer, set_metrics, validate_span_records
from repro.serve import BatchExecutor, PlanRegistry
from tests.conftest import random_vector_sparse


@pytest.fixture()
def metrics():
    """Isolate the process-global metrics registry per test."""
    mine = MetricsRegistry()
    prev = set_metrics(mine)
    yield mine
    set_metrics(prev)


def _panels(rng, k=64, n=16, count=6):
    return [rng.standard_normal((k, n)).astype(np.float16) for _ in range(count)]


def _chain_graph(rng, layers=3):
    """A plain k->k MLP chain with relu between hidden layers."""
    g = ModelGraph(input_cast="float16")
    prev = "input"
    weights = []
    for i in range(layers):
        w = random_vector_sparse(64, 64, v=4, sparsity=0.9, rng=rng)
        weights.append(w)
        g.add_layer(
            f"fc{i}",
            weight=w,
            inputs=prev,
            activation="relu" if i < layers - 1 else "none",
            cast="float16",
        )
        prev = f"fc{i}"
    return g, weights


def _executor_for(graph, tmp_path, **kw):
    registry = PlanRegistry(cache_dir=tmp_path)
    graph.register(registry)
    registry.warm()
    return BatchExecutor(registry, **kw)


class TestBitIdentity:
    def test_from_model_matches_model_forward(self, rng, tmp_path, metrics):
        model = SparseModel.from_pruned_mlp(
            (64, 64, 64), v=4, sparsity=0.9, rng=rng
        )
        graph = ModelGraph.from_model(model)
        x = rng.standard_normal((64, 16)).astype(np.float16)
        expect, _ = model.forward(x)
        with _executor_for(graph, tmp_path, max_batch=1) as ex:
            result = GraphExecutor(graph, ex).run([x])[0]
        assert result.output is not None
        np.testing.assert_array_equal(result.output, expect)

    def test_unbatched_pipelined_equals_sequential(self, rng, tmp_path, metrics):
        # max_batch=1: unconditional bit-identity, any kernel version.
        graph, _ = _chain_graph(rng)
        panels = _panels(rng)
        with _executor_for(graph, tmp_path, max_batch=1) as ex:
            gx = GraphExecutor(graph, ex)
            seq = gx.run_sequential(panels)
            pip = gx.run(panels)
        for s, p in zip(seq, pip):
            assert s.outputs.keys() == p.outputs.keys()
            for name in s.outputs:
                np.testing.assert_array_equal(s.outputs[name], p.outputs[name])

    def test_batched_pipelined_equals_sequential_fixed_tile(
        self, rng, tmp_path, metrics
    ):
        # Batching changes group formation, never results — for a
        # fixed-tile kernel version (the documented contract).
        graph, _ = _chain_graph(rng)
        panels = _panels(rng, count=8)
        with _executor_for(graph, tmp_path, max_batch=8) as ex:
            gx = GraphExecutor(graph, ex, version="v3")
            seq = gx.run_sequential(panels)
            pip = gx.run(panels)
        for s, p in zip(seq, pip):
            for name in s.outputs:
                np.testing.assert_array_equal(s.outputs[name], p.outputs[name])

    def test_diamond_dag_matches_direct_plans(self, rng, tmp_path, metrics):
        # input -> (left, right) -> sum join -> head; the join is a
        # matrix-less node.
        wl = random_vector_sparse(64, 64, v=4, sparsity=0.9, rng=rng)
        wr = random_vector_sparse(64, 64, v=4, sparsity=0.9, rng=rng)
        wh = random_vector_sparse(32, 64, v=4, sparsity=0.9, rng=rng)
        graph = ModelGraph(input_cast="float16")
        graph.add_layer("left", weight=wl, cast="float16")
        graph.add_layer("right", weight=wr, cast="float16")
        graph.add_layer("join", inputs=("left", "right"), cast=None)
        graph.add_layer("head", weight=wh, inputs="join", cast="float16")
        panels = _panels(rng, count=4)
        with _executor_for(graph, tmp_path, max_batch=4) as ex:
            gx = GraphExecutor(graph, ex, version="v3")
            seq = gx.run_sequential(panels)
            pip = gx.run(panels)
            assert gx._sink == "head"
        # Direct plan-API reference for the same DAG.
        pl, pr, ph = (JigsawPlan(w) for w in (wl, wr, wh))
        for x, res in zip(panels, pip):
            left = pl.run(x, version="v3").c.astype(np.float16)
            right = pr.run(x, version="v3").c.astype(np.float16)
            head = ph.run(left + right, version="v3").c.astype(np.float16)
            np.testing.assert_array_equal(res.outputs["join"], left + right)
            np.testing.assert_array_equal(res.output, head)
        for s, p in zip(seq, pip):
            np.testing.assert_array_equal(s.output, p.output)

    def test_mixed_width_shared_matrix_batching(self, rng, tmp_path, metrics):
        # Two layers share one matrix but produce different panel widths
        # (a GCN-like shape), so their SpMMs batch into mixed-width
        # groups; a fixed-tile version keeps that bit-identical.
        w = random_vector_sparse(64, 64, v=4, sparsity=0.9, rng=rng)
        graph = ModelGraph(input_cast="float16")
        graph.add_layer(
            "l0",
            weight=w,
            matrix="shared",
            cast="float16",
            transform=lambda p: np.ascontiguousarray(p[:, :24]),
        )
        graph.add_layer(
            "l1", matrix="shared", inputs="l0", cast="float16"
        )
        panels = _panels(rng, n=32, count=8)
        with _executor_for(graph, tmp_path, max_batch=8) as ex:
            gx = GraphExecutor(graph, ex, version="v3")
            seq = gx.run_sequential(panels)
            pip = gx.run(panels)
        for s, p in zip(seq, pip):
            np.testing.assert_array_equal(s.output, p.output)


class TestDynamicUpdates:
    def test_apply_update_mid_stream(self, rng, tmp_path, metrics):
        graph, weights = _chain_graph(rng, layers=2)
        panels = _panels(rng, count=4)
        registry = PlanRegistry(cache_dir=tmp_path)
        graph.register(registry)
        registry.warm()
        upd_rows = np.array([3, 7, 40])
        upd_cols = np.array([10, 2, 33])
        upd_vals = (rng.standard_normal(3) * 0.1).astype(np.float16)
        with BatchExecutor(registry, max_batch=4) as ex:
            gx = GraphExecutor(graph, ex, version="v3")
            before = gx.run(panels)
            registry.apply_update("fc0", upd_rows, upd_cols, upd_vals)
            after = gx.run(panels)
        assert registry.version("fc0") == 1

        # Reference chains from *fresh* plans of the old and new dense
        # content — the served repair must be bit-identical to a rebuild.
        w0_new = weights[0].copy()
        w0_new[upd_rows, upd_cols] = upd_vals
        assert not np.array_equal(w0_new, weights[0])

        def chain(w0, x):
            h = JigsawPlan(w0).run(x, version="v3").c.astype(np.float16)
            h = np.maximum(h, np.float16(0))
            return JigsawPlan(weights[1]).run(h, version="v3").c.astype(np.float16)

        for x, res in zip(panels, before):
            np.testing.assert_array_equal(res.output, chain(weights[0], x))
        for x, res in zip(panels, after):
            np.testing.assert_array_equal(res.output, chain(w0_new, x))
        # The update actually changed at least one request's output.
        assert any(
            not np.array_equal(b.output, a.output)
            for b, a in zip(before, after)
        )


class TestFailurePaths:
    def test_unregistered_matrix_fails_at_construction(self, rng, tmp_path):
        graph = ModelGraph()
        graph.add_layer("a", matrix="ghost")
        with BatchExecutor(PlanRegistry(cache_dir=tmp_path)) as ex:
            with pytest.raises(KeyError):
                GraphExecutor(graph, ex)

    def test_failing_transform_propagates_and_counts(self, rng, tmp_path, metrics):
        w = random_vector_sparse(64, 64, v=4, sparsity=0.9, rng=rng)
        graph = ModelGraph()

        def boom(panel):
            raise RuntimeError("transform exploded")

        graph.add_layer("a", weight=w, transform=boom)
        x = rng.standard_normal((64, 8)).astype(np.float16)
        with _executor_for(graph, tmp_path) as ex:
            gx = GraphExecutor(graph, ex)
            fut = gx.submit(x)
            ex.flush()
            with pytest.raises(RuntimeError, match="exploded"):
                fut.result(timeout=60)
            # The executor survives: a healthy graph still serves.
            healthy = ModelGraph()
            healthy.add_layer("a", matrix="a", cast="float16")
            result = GraphExecutor(healthy, ex).run([x])[0]
            assert result.output is not None
        counter = metrics.get("repro_graph_requests_total")
        assert counter.value(outcome="error") == 1
        assert counter.value(outcome="ok") == 1


class TestTracing:
    def test_layer_spans_partition_request_interval(self, rng, tmp_path, metrics):
        graph, _ = _chain_graph(rng, layers=3)
        registry = PlanRegistry(cache_dir=tmp_path)
        graph.register(registry)
        registry.warm()
        tracer = Tracer()
        panels = _panels(rng, count=2)
        with BatchExecutor(registry, tracer=tracer) as ex:
            results = GraphExecutor(graph, ex).run(panels)
        spans = tracer.buffer.snapshot()
        roots = {
            s.attrs["graph_request_id"]: s
            for s in spans
            if s.name == "graph.request"
        }
        assert len(roots) == len(results) == 2
        layers = [s for s in spans if s.name == "graph.layer"]
        for res in results:
            root = roots[res.request_id]
            assert root.attrs["outcome"] == "ok"
            kids = sorted(
                (s for s in layers if s.parent_id == root.span_id),
                key=lambda s: s.start_s,
            )
            assert [k.attrs["node"] for k in kids] == ["fc0", "fc1", "fc2"]
            # Children partition [start, end]: contiguous, and their
            # durations sum to the end-to-end latency.
            assert kids[0].start_s == root.start_s
            assert kids[-1].end_s == root.end_s
            for a, b in zip(kids, kids[1:]):
                assert a.end_s == b.start_s
            total = sum(k.duration_s for k in kids)
            assert total == pytest.approx(res.duration_s, rel=1e-9)
            for k in kids:
                assert k.attrs["route"] != ""
        assert validate_span_records([s.to_dict() for s in spans]) == []

    def test_graph_metrics_accumulate(self, rng, tmp_path, metrics):
        graph, _ = _chain_graph(rng, layers=2)
        panels = _panels(rng, count=3)
        with _executor_for(graph, tmp_path) as ex:
            GraphExecutor(graph, ex).run(panels)
        assert (
            metrics.get("repro_graph_requests_total").value(outcome="ok") == 3
        )
        assert metrics.get("repro_graph_layers_total").value() == 6
        assert metrics.get("repro_graph_seconds_total").value() > 0
