"""ModelGraph structure: node validation, topology, lowering, registry."""

import numpy as np
import pytest

from repro.core import SparseModel
from repro.graph import INPUT, LayerNode, ModelGraph


class TestLayerNode:
    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError, match="activation"):
            LayerNode("n", activation="swish")

    def test_rejects_unknown_cast(self):
        with pytest.raises(ValueError, match="cast"):
            LayerNode("n", cast="bfloat16")

    def test_rejects_unknown_combine(self):
        with pytest.raises(ValueError, match="combine"):
            LayerNode("n", combine="max")

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError, match="inputs"):
            LayerNode("n", inputs=())

    def test_apply_post_order_is_cast_relu_transform(self):
        # The transform sees the *post-relu* panel: shifting by -1 after
        # relu leaves negatives only if relu already ran, and the relu
        # ran in the cast dtype.
        node = LayerNode(
            "n",
            cast="float16",
            activation="relu",
            transform=lambda p: p - np.float16(1),
        )
        out = node.apply_post(np.array([[-2.0, 3.0]], dtype=np.float32))
        assert out.dtype == np.float16
        np.testing.assert_array_equal(out, np.array([[-1.0, 2.0]], np.float16))

    def test_single_input_combine_is_zero_copy(self):
        node = LayerNode("n")
        p = np.ones((4, 2), np.float16)
        assert node.combined([p]) is p

    def test_sum_combines_in_declaration_order(self):
        node = LayerNode("n", inputs=("a", "b", "c"))
        panels = [np.full((2, 2), v, np.float16) for v in (1, 2, 4)]
        np.testing.assert_array_equal(
            node.combined(panels), np.full((2, 2), 7, np.float16)
        )

    def test_concat_stacks_features_rowwise(self):
        node = LayerNode("n", inputs=("a", "b"), combine="concat")
        a = np.zeros((3, 2), np.float16)
        b = np.ones((5, 2), np.float16)
        out = node.combined([a, b])
        assert out.shape == (8, 2)
        np.testing.assert_array_equal(out[:3], a)
        np.testing.assert_array_equal(out[3:], b)


class TestModelGraph:
    def test_rejects_duplicate_node_name(self):
        g = ModelGraph()
        g.add_layer("a")
        with pytest.raises(ValueError, match="taken"):
            g.add_layer("a")

    def test_rejects_node_named_input(self):
        with pytest.raises(ValueError, match="taken"):
            ModelGraph().add_layer(INPUT)

    def test_rejects_unknown_input_edge(self):
        g = ModelGraph()
        with pytest.raises(ValueError, match="unknown input"):
            g.add_layer("a", inputs="nope")

    def test_rejects_unknown_input_cast(self):
        with pytest.raises(ValueError, match="cast"):
            ModelGraph(input_cast="int8")

    def test_topo_order_is_declaration_order(self):
        g = ModelGraph()
        g.add_layer("a")
        g.add_layer("b", inputs="a")
        g.add_layer("c", inputs=("a", "b"))
        assert [n.name for n in g.topo_order()] == ["a", "b", "c"]

    def test_topo_order_empty_graph_raises(self):
        with pytest.raises(ValueError, match="no nodes"):
            ModelGraph().topo_order()

    def test_consumers_and_sinks(self):
        g = ModelGraph()
        g.add_layer("a")
        g.add_layer("b", inputs="a")
        g.add_layer("c", inputs="a")
        cons = g.consumers()
        assert cons[INPUT] == ["a"]
        assert cons["a"] == ["b", "c"]
        assert sorted(g.sinks()) == ["b", "c"]
        with pytest.raises(ValueError, match="sinks"):
            g.output_node()
        g.add_layer("d", inputs=("b", "c"))
        assert g.output_node() == "d"

    def test_weight_registers_under_matrix_or_node_name(self):
        g = ModelGraph()
        w = np.zeros((16, 32), np.float32)
        g.add_layer("a", weight=w)
        g.add_layer("b", weight=w, matrix="shared")
        g.add_layer("c", matrix="shared", inputs="b")
        assert g.matrices() == ["a", "shared"]
        weights = g.weights()
        assert set(weights) == {"a", "shared"}
        # Carried weights are canonicalized to contiguous fp16.
        assert weights["a"].dtype == np.float16

    def test_register_registers_every_weight(self, rng):
        from repro.serve import PlanRegistry
        from tests.conftest import random_vector_sparse

        g = ModelGraph()
        g.add_layer("a", weight=random_vector_sparse(64, 128, 4, 0.9, rng))
        g.add_layer(
            "b", weight=random_vector_sparse(64, 64, 4, 0.9, rng), inputs="a"
        )
        reg = PlanRegistry()
        g.register(reg)
        for name in ("a", "b"):
            assert reg.matrix(name) is not None

    def test_from_model_reproduces_relu_placement(self, rng):
        model = SparseModel.from_pruned_mlp((64, 64, 64), v=4, sparsity=0.8, rng=rng)
        g = ModelGraph.from_model(model, prefix="m.")
        names = [n.name for n in g.topo_order()]
        assert names == [f"m.{layer.name}" for layer in model.layers]
        # relu between hidden layers, none after the last — the
        # SparseModel.forward dataflow.
        acts = [n.activation for n in g.topo_order()]
        assert acts == ["relu", "none"]
        assert all(n.cast == "float16" for n in g.topo_order())
        assert g.topo_order()[0].inputs == (INPUT,)
        assert g.topo_order()[1].inputs == (names[0],)
