"""Tests for SMTX (DLMC on-disk format) I/O."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    is_vector_sparse,
    load_smtx_as_vector_sparse,
    read_smtx,
    write_smtx,
)
from repro.formats import CSRMatrix


SAMPLE = """4, 6, 5
0 2 2 4 5
0 3 1 5 2
"""


class TestRead:
    def test_sample(self):
        csr = read_smtx(io.StringIO(SAMPLE))
        assert csr.shape == (4, 6)
        assert csr.nnz == 5
        dense = csr.to_dense()
        assert dense[0, 0] == 1 and dense[0, 3] == 1
        assert dense[1].sum() == 0
        assert dense[2, 1] == 1 and dense[2, 5] == 1
        assert dense[3, 2] == 1

    def test_whitespace_and_commas_tolerated(self):
        text = "2,2,1\n0 1 1\n0\n"
        csr = read_smtx(io.StringIO(text))
        assert csr.nnz == 1

    def test_rejects_short_header(self):
        with pytest.raises(ValueError):
            read_smtx(io.StringIO("3 4\n"))

    def test_rejects_wrong_body_length(self):
        with pytest.raises(ValueError):
            read_smtx(io.StringIO("2, 2, 2\n0 1 2\n0\n"))

    def test_rejects_bad_row_ptr(self):
        with pytest.raises(ValueError):
            read_smtx(io.StringIO("2, 2, 1\n1 1 1\n0\n"))

    def test_rejects_negative_dims(self):
        with pytest.raises(ValueError):
            read_smtx(io.StringIO("-1, 2, 0\n0\n"))


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path, rng):
        dense = (rng.random((16, 24)) > 0.8).astype(np.float16)
        path = tmp_path / "m.smtx"
        write_smtx(dense, path)
        back = read_smtx(path)
        np.testing.assert_array_equal(back.to_dense() != 0, dense != 0)

    def test_csr_roundtrip(self, rng):
        dense = (rng.random((8, 8)) > 0.5).astype(np.float16)
        buf = io.StringIO()
        write_smtx(CSRMatrix.from_dense(dense), buf)
        back = read_smtx(io.StringIO(buf.getvalue()))
        np.testing.assert_array_equal(back.to_dense() != 0, dense != 0)

    @given(st.integers(1, 12), st.integers(1, 12), st.floats(0.0, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows, cols, density):
        rng = np.random.default_rng(42)
        dense = (rng.random((rows, cols)) < density).astype(np.float16)
        buf = io.StringIO()
        write_smtx(dense, buf)
        back = read_smtx(io.StringIO(buf.getvalue()))
        np.testing.assert_array_equal(back.to_dense() != 0, dense != 0)


class TestVectorExpansion:
    def test_load_as_vector_sparse(self, tmp_path, rng):
        base = (rng.random((8, 16)) > 0.7).astype(np.float16)
        path = tmp_path / "base.smtx"
        write_smtx(base, path)
        mat = load_smtx_as_vector_sparse(path, v=4, rng=rng)
        assert mat.shape == (32, 16)
        assert is_vector_sparse(mat, 4)
        expected_vectors = int(np.count_nonzero(base))
        got_vectors = int(
            np.any(mat.reshape(8, 4, 16) != 0, axis=1).sum()
        )
        assert got_vectors == expected_vectors

    def test_end_to_end_through_jigsaw(self, tmp_path, rng):
        base = (rng.random((16, 64)) > 0.85).astype(np.float16)
        path = tmp_path / "layer.smtx"
        write_smtx(base, path)
        a = load_smtx_as_vector_sparse(path, v=4, rng=rng)
        b = rng.standard_normal((64, 32)).astype(np.float16)
        from repro.core import jigsaw_spmm

        res = jigsaw_spmm(a, b, block_tiles=(32,))
        np.testing.assert_allclose(
            res.c, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-3, atol=1e-2
        )
