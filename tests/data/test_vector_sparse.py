"""Tests for vector-sparsity expansion and pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    achieved_sparsity,
    expand_to_vector_sparse,
    is_vector_sparse,
    magnitude_prune,
    random_prune_mask,
    vector_prune,
    vector_sparsity,
    zero_column_fraction,
)


class TestExpansion:
    def test_shape_grows_by_v(self, rng):
        base = rng.random((8, 16)) > 0.5
        out = expand_to_vector_sparse(base, 4, rng)
        assert out.shape == (32, 16)

    def test_output_is_vector_sparse(self, rng):
        base = rng.random((8, 16)) > 0.8
        for v in (2, 4, 8):
            out = expand_to_vector_sparse(base, v, rng)
            assert is_vector_sparse(out, v)

    def test_vector_sparsity_preserved(self, rng):
        base = rng.random((64, 64)) > 0.9
        out = expand_to_vector_sparse(base, 4, rng)
        assert vector_sparsity(out, 4) == pytest.approx(1 - base.mean())

    def test_rejects_bad_v(self, rng):
        with pytest.raises(ValueError):
            expand_to_vector_sparse(np.ones((2, 2)), 0, rng)

    @given(st.integers(1, 8), st.floats(0.0, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_expansion_structure_property(self, v, sparsity):
        rng = np.random.default_rng(3)
        base = rng.random((6, 12)) >= sparsity
        out = expand_to_vector_sparse(base, v, rng)
        # Each base nonzero becomes a fully dense v-vector; each base zero
        # stays a fully zero v-vector.
        tiles = out.reshape(6, v, 12) != 0
        np.testing.assert_array_equal(np.any(tiles, axis=1), base)
        np.testing.assert_array_equal(np.all(tiles, axis=1), base)


class TestVectorChecks:
    def test_is_vector_sparse_rejects_partial_vectors(self):
        a = np.zeros((4, 4), np.float16)
        a[0, 0] = 1  # half of a v=2 vector
        assert not is_vector_sparse(a, 2)

    def test_is_vector_sparse_rejects_indivisible(self):
        assert not is_vector_sparse(np.zeros((3, 4), np.float16), 2)

    def test_vector_sparsity_rejects_indivisible(self):
        with pytest.raises(ValueError):
            vector_sparsity(np.zeros((3, 4), np.float16), 2)

    def test_zero_column_fraction(self):
        a = np.zeros((4, 4), np.float16)
        a[:, 0] = 1
        assert zero_column_fraction(a) == pytest.approx(0.75)

    def test_zero_column_fraction_empty(self):
        assert zero_column_fraction(np.zeros((0, 0), np.float16)) == 0.0


class TestPruning:
    def test_random_mask_sparsity(self, rng):
        mask = random_prune_mask((512, 512), 0.8, rng)
        assert 1 - mask.mean() == pytest.approx(0.8, abs=0.01)

    def test_random_mask_rejects_bad_sparsity(self, rng):
        with pytest.raises(ValueError):
            random_prune_mask((4, 4), 1.0, rng)

    def test_magnitude_prune_keeps_largest(self, rng):
        dense = rng.standard_normal((128, 128)).astype(np.float32)
        pruned = magnitude_prune(dense, 0.9)
        assert achieved_sparsity(pruned) == pytest.approx(0.9, abs=0.01)
        kept = np.abs(pruned[pruned != 0])
        dropped_max = np.abs(dense[pruned == 0]).max()
        assert kept.min() >= dropped_max

    def test_magnitude_prune_zero_sparsity(self, rng):
        dense = rng.standard_normal((8, 8))
        np.testing.assert_array_equal(magnitude_prune(dense, 0.0), dense)

    def test_vector_prune_output_is_vector_sparse(self, rng):
        dense = rng.standard_normal((64, 64)).astype(np.float16)
        pruned = vector_prune(dense, v=4, sparsity=0.75)
        assert is_vector_sparse(pruned, 4)

    def test_vector_prune_sparsity(self, rng):
        dense = rng.standard_normal((256, 256)).astype(np.float16)
        pruned = vector_prune(dense, v=4, sparsity=0.9)
        assert vector_sparsity(pruned, 4) == pytest.approx(0.9, abs=0.01)

    def test_vector_prune_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError):
            vector_prune(rng.standard_normal((10, 4)), v=4, sparsity=0.5)

    def test_achieved_sparsity_empty(self):
        assert achieved_sparsity(np.zeros((0, 4))) == 0.0
