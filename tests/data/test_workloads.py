"""Tests for workload enumeration."""

import numpy as np
import pytest

from repro.data import (
    EVAL_N_VALUES,
    EVAL_SPARSITIES,
    Workload,
    enumerate_workloads,
    is_vector_sparse,
    vector_sparsity,
)


class TestWorkload:
    def test_materialize_shapes(self):
        w = Workload("t", m=64, k=128, n=32, sparsity=0.9, v=4)
        a, b = w.materialize()
        assert a.shape == (64, 128)
        assert b.shape == (128, 32)

    def test_lhs_is_vector_sparse(self):
        w = Workload("t", m=64, k=128, n=32, sparsity=0.9, v=4)
        a = w.materialize_lhs()
        assert is_vector_sparse(a, 4)
        assert vector_sparsity(a, 4) == pytest.approx(0.9, abs=0.08)

    def test_deterministic(self):
        w = Workload("t", m=32, k=64, n=16, sparsity=0.8, v=2)
        np.testing.assert_array_equal(w.materialize_lhs(), w.materialize_lhs())

    def test_rejects_indivisible_m(self):
        with pytest.raises(ValueError):
            Workload("t", m=30, k=64, n=16, sparsity=0.8, v=4)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            Workload("t", m=32, k=64, n=16, sparsity=1.0, v=4)

    def test_flops(self):
        w = Workload("t", m=32, k=64, n=16, sparsity=0.8, v=2)
        assert w.flops_dense == 2 * 32 * 64 * 16


class TestEnumeration:
    def test_grid_matches_paper(self):
        assert EVAL_SPARSITIES == (0.80, 0.90, 0.95, 0.98)
        assert 256 in EVAL_N_VALUES and 512 in EVAL_N_VALUES

    def test_enumeration_size(self):
        ws = list(enumerate_workloads(sparsities=(0.9,), vector_widths=(4,)))
        from repro.data import EVAL_SHAPES

        assert len(ws) == len(EVAL_SHAPES) * len(EVAL_N_VALUES)

    def test_unique_names_and_seeds(self):
        ws = list(enumerate_workloads())
        names = {w.name for w in ws}
        seeds = {w.seed for w in ws}
        assert len(names) == len(ws)
        assert len(seeds) == len(ws)

    def test_contains_anomaly_shape(self):
        # The cuBLAS N=256 -> 512 anomaly shape: M=2048, K=2048.
        ws = list(enumerate_workloads(sparsities=(0.9,), vector_widths=(4,)))
        assert any(w.m == 2048 and w.k == 2048 and w.n in (256, 512) for w in ws)
