"""Tests for the synthetic DLMC dataset."""

import numpy as np
import pytest

from repro.data import (
    SHAPE_CATALOGUE,
    SPARSITY_GRID,
    DlmcDataset,
    catalogue_shapes_max_k,
)


class TestCatalogue:
    def test_k_range_matches_paper(self):
        # Paper Section 4.3: "in the DLMC dataset, K ranges from 64 to 4,608".
        ks = [k for _, k in SHAPE_CATALOGUE]
        assert min(ks) == 64
        assert max(ks) == 4608
        assert catalogue_shapes_max_k() == 4608

    def test_sparsity_grid_covers_paper_range(self):
        for s in (0.5, 0.8, 0.9, 0.95, 0.98):
            assert s in SPARSITY_GRID

    def test_entry_count(self):
        ds = DlmcDataset(methods=("random",), sparsities=(0.9,))
        assert len(ds) == len(SHAPE_CATALOGUE)
        assert len(list(ds.entries())) == len(ds)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            DlmcDataset(methods=("banana",))

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            DlmcDataset(sparsities=(1.5,))


class TestMaterialization:
    def test_deterministic(self):
        ds = DlmcDataset(methods=("random",), sparsities=(0.9,))
        entry = next(ds.entries())
        m1 = ds.materialize(entry)
        m2 = ds.materialize(entry)
        np.testing.assert_array_equal(m1, m2)

    def test_random_sparsity_close_to_target(self):
        ds = DlmcDataset(methods=("random",), sparsities=(0.9,), shapes=((512, 512),))
        entry = next(ds.entries())
        mask = ds.materialize_mask(entry)
        assert 1 - mask.mean() == pytest.approx(0.9, abs=0.01)

    def test_magnitude_sparsity_close_to_target(self):
        ds = DlmcDataset(methods=("magnitude",), sparsities=(0.95,), shapes=((512, 512),))
        entry = next(ds.entries())
        mask = ds.materialize_mask(entry)
        assert 1 - mask.mean() == pytest.approx(0.95, abs=0.01)

    def test_values_match_mask(self):
        ds = DlmcDataset(methods=("random",), sparsities=(0.8,), shapes=((64, 64),))
        entry = next(ds.entries())
        mat = ds.materialize(entry)
        mask = ds.materialize_mask(entry)
        np.testing.assert_array_equal(mat != 0, mask)

    def test_different_entries_differ(self):
        ds = DlmcDataset(methods=("random",), sparsities=(0.8, 0.9), shapes=((64, 64),))
        entries = list(ds.entries())
        m0 = ds.materialize_mask(entries[0])
        m1 = ds.materialize_mask(entries[1])
        assert not np.array_equal(m0, m1)

    def test_variational_dropout_row_imbalance(self):
        ds = DlmcDataset(
            methods=("variational_dropout",), sparsities=(0.9,), shapes=((512, 512),)
        )
        entry = next(ds.entries())
        mask = ds.materialize_mask(entry)
        per_row = mask.mean(axis=1)
        # Row densities should vary far more than Bernoulli noise.
        assert per_row.std() > 0.01
