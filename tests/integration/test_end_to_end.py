"""Integration tests across the whole stack.

Every system — Jigsaw (all versions, all tile sizes, hybrid) and every
baseline — must produce the same SpMM result on shared workloads, and
the analysis harness must compose them without surprises.
"""

import numpy as np
import pytest

from repro.baselines import (
    clasp_spmm,
    cublas_hgemm,
    cusparse_spmm,
    magicube_spmm,
    sparta_spmm,
    sputnik_spmm,
    vectorsparse_spmm,
)
from repro.core import JigsawPlan, TileConfig
from repro.core.kernels import hybrid_spmm
from repro.data import Workload
from tests.conftest import random_vector_sparse


@pytest.fixture(scope="module")
def workload():
    w = Workload("it", m=128, k=192, n=96, sparsity=0.88, v=4, seed=90)
    a, b = w.materialize()
    ref = a.astype(np.float32) @ b.astype(np.float32)
    return w, a, b, ref


class TestCrossSystemAgreement:
    def test_all_systems_compute_the_same_product(self, workload):
        _, a, b, ref = workload
        outputs = {
            "cublas": cublas_hgemm(a, b).c,
            "jigsaw": JigsawPlan(a).run(b).c,
            "hybrid": hybrid_spmm(a, b, TileConfig(block_tile=32)).c,
            "clasp": clasp_spmm(a, b).c,
            "magicube": magicube_spmm(a, b, v=4).c,
            "sputnik": sputnik_spmm(a, b).c,
            "sparta": sparta_spmm(a, b).c,
            "cusparse": cusparse_spmm(a, b).c,
            "vectorsparse": vectorsparse_spmm(a, b, pv=4).c,
        }
        for name, c in outputs.items():
            np.testing.assert_allclose(c, ref, rtol=1e-2, atol=0.1, err_msg=name)

    def test_jigsaw_versions_agree(self, workload):
        _, a, b, ref = workload
        plan = JigsawPlan(a)
        for ver in ("v0", "v1", "v2", "v3", "v4"):
            np.testing.assert_allclose(
                plan.run(b, version=ver).c, ref, rtol=1e-3, atol=1e-2, err_msg=ver
            )

    def test_block_tiles_agree(self, workload):
        _, a, b, ref = workload
        plan = JigsawPlan(a)
        for bt in (16, 32, 64):
            from repro.core.kernels import V3, run_jigsaw_kernel

            res = run_jigsaw_kernel(plan.format_for(bt), b, V3)
            np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2, err_msg=str(bt))


class TestDeterminism:
    def test_workload_materialization_stable(self):
        w = Workload("d", m=64, k=64, n=32, sparsity=0.9, v=2, seed=5)
        a1, b1 = w.materialize()
        a2, b2 = w.materialize()
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)

    def test_profiles_deterministic(self, workload):
        _, a, b, _ = workload
        d1 = JigsawPlan(a).run(b, want_output=False).profile.duration_us
        d2 = JigsawPlan(a).run(b, want_output=False).profile.duration_us
        assert d1 == d2

    def test_reorder_deterministic(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        from repro.core import reorder_matrix

        r1 = reorder_matrix(a)
        r2 = reorder_matrix(a)
        for s1, s2 in zip(r1.slabs, r2.slabs):
            np.testing.assert_array_equal(s1.col_ids, s2.col_ids)
            np.testing.assert_array_equal(s1.tile_perms, s2.tile_perms)


class TestDevicePortability:
    def test_kernels_run_on_other_devices(self, workload):
        _, a, b, ref = workload
        from repro.gpu import V100

        res = JigsawPlan(a).run(b, device=V100)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)
        # Weaker device, longer duration.
        a100 = JigsawPlan(a).run(b, want_output=False).profile.duration_us
        assert res.profile.duration_us > a100 * 0.8

    def test_custom_device_spec(self, workload):
        _, a, b, _ = workload
        from repro.gpu import A100

        half = A100.with_(num_sms=54)
        d_full = cublas_hgemm(a, b, want_output=False).profile.duration_us
        d_half = cublas_hgemm(a, b, device=half, want_output=False).profile.duration_us
        assert d_half >= d_full


class TestScaleInvariants:
    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_duration_monotone_in_n(self, n, rng):
        a = random_vector_sparse(128, 256, v=4, sparsity=0.9, rng=rng)
        plan = JigsawPlan(a, block_tiles=(64,))
        b = rng.standard_normal((256, n)).astype(np.float16)
        d = plan.run(b, version="v3", want_output=False).profile.duration_us
        if not hasattr(self, "_last"):
            self._last = {}
        for prev_n, prev_d in self._last.items():
            if prev_n < n:
                assert d >= prev_d * 0.95
        self._last[n] = d

    def test_speedup_grows_with_sparsity_at_scale(self, rng):
        b = np.zeros((1024, 1024), np.float16)
        ratios = []
        for sp in (0.85, 0.98):
            a = random_vector_sparse(1024, 1024, v=8, sparsity=sp, rng=rng)
            jig = JigsawPlan(a).run(b, want_output=False).profile.duration_us
            cu = cublas_hgemm(a, b, want_output=False).profile.duration_us
            ratios.append(cu / jig)
        assert ratios[1] > ratios[0]
