"""Tests for dense/sparse tensor-core functional models."""

import numpy as np
import pytest

from repro.gpu import (
    JIGSAW_SPTC_SHAPE,
    SUPPORTED_SPTC_SHAPES,
    InstructionMix,
    MmaShape,
    Op,
    compress_2to4,
    expand_2to4,
    mma_dense,
    mma_sp,
    satisfies_2to4,
)


def random_2to4(m: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """A random fp16 matrix satisfying the 2:4 pattern."""
    a = np.zeros((m, k), dtype=np.float16)
    for i in range(m):
        for g in range(k // 4):
            pos = rng.choice(4, size=2, replace=False)
            a[i, g * 4 + pos] = rng.standard_normal(2).astype(np.float16)
    return a


class TestSupportedShapes:
    """Paper Table 1: SpTC shapes per precision."""

    def test_fp16_shapes(self):
        assert SUPPORTED_SPTC_SHAPES["f16"] == (MmaShape(16, 8, 16), MmaShape(16, 8, 32))

    def test_tf32_shapes(self):
        assert SUPPORTED_SPTC_SHAPES["tf32"] == (MmaShape(16, 8, 16), MmaShape(16, 8, 8))

    def test_int8_shapes(self):
        assert SUPPORTED_SPTC_SHAPES["s8"] == (MmaShape(16, 8, 32), MmaShape(16, 8, 64))

    def test_int4_shapes(self):
        assert SUPPORTED_SPTC_SHAPES["u4"] == (MmaShape(16, 8, 64), MmaShape(16, 8, 128))

    def test_jigsaw_uses_m16n8k32(self):
        # Paper Section 2.2: m16n8k32 keeps dense-MMA latency; m16n8k16
        # halves throughput, so Jigsaw picks m16n8k32.
        assert JIGSAW_SPTC_SHAPE == MmaShape(16, 8, 32)


class TestDenseMma:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((16, 16)).astype(np.float16)
        b = rng.standard_normal((16, 8)).astype(np.float16)
        c = rng.standard_normal((16, 8)).astype(np.float32)
        d = mma_dense(a, b, c)
        ref = a.astype(np.float32) @ b.astype(np.float32) + c
        np.testing.assert_allclose(d, ref, rtol=1e-6)

    def test_emits_instruction_event(self):
        mix = InstructionMix()
        a = np.zeros((16, 16), np.float16)
        b = np.zeros((16, 8), np.float16)
        c = np.zeros((16, 8), np.float32)
        mma_dense(a, b, c, mix=mix)
        assert mix.count(Op.MMA_M16N8K16_F16) == 1

    def test_m8n8k16_shape(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((8, 16)).astype(np.float16)
        b = rng.standard_normal((16, 8)).astype(np.float16)
        c = np.zeros((8, 8), np.float32)
        d = mma_dense(a, b, c, shape=MmaShape(8, 8, 16))
        np.testing.assert_allclose(d, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-6)

    def test_rejects_wrong_shapes(self):
        a = np.zeros((16, 16), np.float16)
        b = np.zeros((16, 8), np.float16)
        c = np.zeros((16, 8), np.float32)
        with pytest.raises(ValueError):
            mma_dense(a, b, c, shape=MmaShape(16, 8, 32))
        with pytest.raises(ValueError):
            mma_dense(a, b[:8], c)
        with pytest.raises(ValueError):
            mma_dense(a, b, c, shape=MmaShape(3, 3, 3))


class TestSatisfies2to4:
    def test_accepts_conforming(self):
        rng = np.random.default_rng(3)
        assert satisfies_2to4(random_2to4(16, 32, rng))

    def test_rejects_three_in_group(self):
        a = np.zeros((1, 4), np.float16)
        a[0, :3] = 1
        assert not satisfies_2to4(a)

    def test_rejects_non_multiple_of_4(self):
        assert not satisfies_2to4(np.zeros((4, 6), np.float16))

    def test_all_zero_is_conforming(self):
        assert satisfies_2to4(np.zeros((16, 32), np.float16))


class TestCompression:
    def test_roundtrip(self):
        rng = np.random.default_rng(4)
        a = random_2to4(16, 32, rng)
        vals, meta = compress_2to4(a)
        assert vals.shape == (16, 16)
        assert meta.shape == (16, 16)
        np.testing.assert_array_equal(expand_2to4(vals, meta, 32), a)

    def test_metadata_sorted_within_groups(self):
        rng = np.random.default_rng(5)
        _, meta = compress_2to4(random_2to4(16, 32, rng))
        pairs = meta.reshape(16, 8, 2)
        assert np.all(pairs[:, :, 0] < pairs[:, :, 1])

    def test_sparse_rows_padded_with_zero_slots(self):
        a = np.zeros((1, 4), np.float16)
        a[0, 3] = 2.0
        vals, meta = compress_2to4(a)
        np.testing.assert_array_equal(expand_2to4(vals, meta, 4), a)

    def test_rejects_violation(self):
        a = np.ones((1, 4), np.float16)
        with pytest.raises(ValueError):
            compress_2to4(a)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            compress_2to4(np.zeros((2, 6), np.float16))


class TestExpand:
    def test_rejects_unsorted_metadata(self):
        vals = np.ones((1, 2), np.float16)
        meta = np.array([[3, 1]], np.uint8)
        with pytest.raises(ValueError):
            expand_2to4(vals, meta, 4)

    def test_rejects_out_of_range_metadata(self):
        vals = np.ones((1, 2), np.float16)
        meta = np.array([[0, 7]], np.uint8)
        with pytest.raises(ValueError):
            expand_2to4(vals, meta, 4)


class TestSparseMma:
    def test_matches_dense_on_expanded_operand(self):
        rng = np.random.default_rng(6)
        a = random_2to4(16, 32, rng)
        vals, meta = compress_2to4(a)
        b = rng.standard_normal((32, 8)).astype(np.float16)
        c = rng.standard_normal((16, 8)).astype(np.float32)
        d = mma_sp(vals, meta, b, c)
        ref = a.astype(np.float32) @ b.astype(np.float32) + c
        np.testing.assert_allclose(d, ref, rtol=1e-3, atol=1e-3)

    def test_emits_sparse_event(self):
        rng = np.random.default_rng(7)
        a = random_2to4(16, 32, rng)
        vals, meta = compress_2to4(a)
        mix = InstructionMix()
        mma_sp(vals, meta, np.zeros((32, 8), np.float16), np.zeros((16, 8), np.float32), mix=mix)
        assert mix.count(Op.MMA_SP_M16N8K32_F16) == 1

    def test_sparse_issue_cost_is_half_of_dense_k32(self):
        # The 2x SpTC speedup: mma.sp.m16n8k32 issues in the cycles of a
        # dense m16n8k16 while covering k=32.
        from repro.gpu import COSTS
        sparse = COSTS[Op.MMA_SP_M16N8K32_F16].issue_cycles
        dense_k32 = COSTS[Op.MMA_M16N8K32_F16].issue_cycles
        assert sparse == dense_k32 / 2

    def test_rejects_wrong_operand_shapes(self):
        with pytest.raises(ValueError):
            mma_sp(
                np.zeros((16, 8), np.float16),   # should be 16x16
                np.zeros((16, 8), np.uint8),
                np.zeros((32, 8), np.float16),
                np.zeros((16, 8), np.float32),
            )
