"""Property tests: the vectorized ldmatrix accounting equals the scalar path."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import SharedMemoryModel, SmemLayout
from repro.gpu.ldmatrix import ldmatrix


@st.composite
def stage_rows(draw):
    """Eight distinct row ids within a 64-row tile."""
    rows = draw(
        st.lists(st.integers(0, 63), min_size=8, max_size=8, unique=True)
    )
    return np.array(rows, dtype=np.int64)


class TestBatchEquivalence:
    @given(stage_rows(), st.sampled_from([0, 8]), st.sampled_from([0, 8, 16, 32]))
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_scalar(self, rows, pad, col0):
        layout = SmemLayout(rows=64, cols=64, pad_elems=pad)
        scalar = SharedMemoryModel()
        tx_scalar = scalar.ldmatrix_access(layout.row_addresses(rows, col0))
        batch = SharedMemoryModel()
        tx_batch = batch.ldmatrix_batch(layout, rows.reshape(1, 8), col0)
        assert int(tx_batch[0]) == tx_scalar
        assert batch.stats.transactions == scalar.stats.transactions
        assert batch.stats.conflicts == scalar.stats.conflicts

    @given(
        st.lists(stage_rows(), min_size=1, max_size=5),
        st.sampled_from([0, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_multi_stage_batch(self, stages, pad):
        layout = SmemLayout(rows=64, cols=64, pad_elems=pad)
        rows = np.stack(stages)
        scalar = SharedMemoryModel()
        expected = [
            scalar.ldmatrix_access(layout.row_addresses(s, 0)) for s in stages
        ]
        batch = SharedMemoryModel()
        got = batch.ldmatrix_batch(layout, rows, 0)
        assert got.tolist() == expected
        assert batch.stats.accesses == scalar.stats.accesses

    def test_ldmatrix_instruction_uses_batchable_stages(self):
        # The full ldmatrix.x4 helper and four batch stages agree.
        layout = SmemLayout(rows=64, cols=64, pad_elems=8)
        rows = np.arange(32) % 64
        m1 = SharedMemoryModel()
        tx1 = ldmatrix(m1, layout, rows, 0, num=4)
        m2 = SharedMemoryModel()
        tx2 = int(m2.ldmatrix_batch(layout, rows.reshape(4, 8), 0).sum())
        assert tx1 == tx2

    def test_batch_rejects_bad_shape(self):
        layout = SmemLayout(rows=8, cols=8)
        m = SharedMemoryModel()
        try:
            m.ldmatrix_batch(layout, np.zeros((2, 4), np.int64), 0)
        except ValueError:
            return
        raise AssertionError("expected ValueError for non-8 trailing dim")
