"""Property-based tests on scheduler invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import BlockWork, KernelTrace, Op, simulate_launch


def make_trace(nblocks, mma, sectors, smem_tx, threads=256, smem_bytes=16 * 1024):
    trace = KernelTrace(
        kernel_name="prop",
        threads_per_block=threads,
        smem_bytes_per_block=smem_bytes,
    )
    work = BlockWork(weight=nblocks)
    work.mix.emit(Op.MMA_SP_M16N8K32_F16, mma)
    work.gmem.load_sectors = sectors
    work.gmem.load_requests = max(1, sectors // 8)
    work.gmem.useful_load_bytes = sectors * 32
    work.smem.accesses = smem_tx
    work.smem.transactions = smem_tx
    trace.add_block(work)
    return trace


workish = st.tuples(
    st.integers(1, 4000),     # blocks
    st.integers(1, 50_000),   # mma per block
    st.integers(0, 50_000),   # gmem sectors per block
    st.integers(0, 50_000),   # smem transactions per block
)


class TestSchedulerProperties:
    @given(workish)
    @settings(max_examples=60, deadline=None)
    def test_duration_positive_and_finite(self, params):
        profile = simulate_launch(make_trace(*params))
        assert np.isfinite(profile.duration_us)
        assert profile.duration_us > 0

    @given(workish, st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_more_work_never_faster(self, params, factor):
        nblocks, mma, sectors, smem_tx = params
        base = simulate_launch(make_trace(nblocks, mma, sectors, smem_tx))
        scaled = simulate_launch(
            make_trace(nblocks, mma * factor, sectors * factor, smem_tx * factor)
        )
        assert scaled.duration_us >= base.duration_us * 0.999

    @given(workish)
    @settings(max_examples=40, deadline=None)
    def test_more_blocks_never_faster(self, params):
        nblocks, mma, sectors, smem_tx = params
        base = simulate_launch(make_trace(nblocks, mma, sectors, smem_tx))
        more = simulate_launch(make_trace(nblocks * 2, mma, sectors, smem_tx))
        assert more.duration_us >= base.duration_us * 0.999

    @given(workish)
    @settings(max_examples=40, deadline=None)
    def test_weighting_equals_replication(self, params):
        nblocks, mma, sectors, smem_tx = params
        nblocks = min(nblocks, 50)
        weighted = simulate_launch(make_trace(nblocks, mma, sectors, smem_tx))
        trace = KernelTrace(
            kernel_name="prop", threads_per_block=256, smem_bytes_per_block=16 * 1024
        )
        for _ in range(nblocks):
            w = BlockWork(weight=1)
            w.mix.emit(Op.MMA_SP_M16N8K32_F16, mma)
            w.gmem.load_sectors = sectors
            w.gmem.load_requests = max(1, sectors // 8)
            w.gmem.useful_load_bytes = sectors * 32
            w.smem.accesses = smem_tx
            w.smem.transactions = smem_tx
            trace.add_block(w)
        replicated = simulate_launch(trace)
        assert replicated.duration_us == weighted.duration_us

    @given(workish)
    @settings(max_examples=40, deadline=None)
    def test_duration_bounds_all_pipes(self, params):
        profile = simulate_launch(make_trace(*params))
        # The duration can never undercut any single pipe's service time.
        for bound in (
            profile.compute_limited_cycles,
            profile.smem_limited_cycles,
            profile.memory_limited_cycles,
            profile.issue_limited_cycles,
        ):
            assert profile.duration_cycles >= bound * 0.999
