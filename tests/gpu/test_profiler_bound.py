"""The KernelProfile.bound verdict: stall bound + deterministic ties."""

import pytest

from repro.gpu import KernelProfile


def _profile(**cycles) -> KernelProfile:
    return KernelProfile(
        kernel_name="k",
        duration_cycles=100.0,
        duration_us=1.0,
        grid_blocks=1,
        threads_per_block=128,
        blocks_per_sm=1,
        waves=1.0,
        **cycles,
    )


class TestBoundVerdict:
    @pytest.mark.parametrize(
        "field,name",
        [
            ("compute_limited_cycles", "compute"),
            ("memory_limited_cycles", "memory"),
            ("smem_limited_cycles", "smem"),
            ("issue_limited_cycles", "issue"),
            ("exposed_stall_cycles", "stall"),
        ],
    )
    def test_largest_component_wins(self, field, name):
        p = _profile(**{field: 50.0})
        assert p.bound == name

    def test_stall_bound_reaches_summary_and_timeline(self):
        from repro.gpu import render_timeline

        p = _profile(exposed_stall_cycles=80.0, compute_limited_cycles=10.0)
        assert p.bound == "stall"
        assert "bound=stall" in p.summary()
        assert "stall-bound" in render_timeline(p)

    def test_tie_breaks_by_priority_order(self):
        # All-equal components resolve to the first priority, not to
        # whichever dict insertion order happens to yield.
        p = _profile(
            compute_limited_cycles=25.0,
            memory_limited_cycles=25.0,
            smem_limited_cycles=25.0,
            issue_limited_cycles=25.0,
            exposed_stall_cycles=25.0,
        )
        assert p.bound == "compute"
        # A pairwise tie later in the order resolves to the earlier name.
        p2 = _profile(issue_limited_cycles=30.0, exposed_stall_cycles=30.0)
        assert p2.bound == "issue"

    def test_priority_covers_every_component(self):
        assert KernelProfile.BOUND_PRIORITY == (
            "compute",
            "memory",
            "smem",
            "issue",
            "stall",
        )

    def test_all_zero_defaults_to_first_priority(self):
        assert _profile().bound == "compute"
