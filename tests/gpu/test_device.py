"""Tests for the device specification."""

import pytest

from repro.gpu import A100, V100, DeviceSpec


class TestA100Spec:
    def test_sm_count_matches_paper(self):
        # Paper Section 2.1: "the A100 GPU has 108 SMs".
        assert A100.num_sms == 108

    def test_max_blocks_per_sm(self):
        # Paper Section 2.1: "32 thread blocks in A100".
        assert A100.max_blocks_per_sm == 32

    def test_smem_limit_matches_paper(self):
        # Paper Section 2.1: shared memory per thread block limited to 164KB.
        assert A100.smem_per_sm_bytes == 164 * 1024

    def test_register_cap_matches_paper(self):
        # Paper Section 2.1: maximum 256 registers per thread.
        assert A100.max_registers_per_thread == 256

    def test_warp_schedulers(self):
        # Paper Section 2.1: four warp schedulers per SM.
        assert A100.warp_schedulers_per_sm == 4

    def test_bank_geometry(self):
        # Paper Section 2.1: 32 banks of four consecutive bytes.
        assert A100.smem_banks == 32
        assert A100.smem_bank_bytes == 4

    def test_peak_dense_tc_throughput(self):
        # A100 dense fp16 TC peak is 312 TFLOP/s.
        assert A100.peak_tc_fp16_tflops == pytest.approx(312, rel=0.01)

    def test_tc_vs_cuda_core_ratio(self):
        # Tensor cores are 4x CUDA cores for fp16 on A100; this gap is why
        # Sputnik (CUDA cores) trails cuBLAS (TC) except at 98% sparsity.
        assert A100.tc_fp16_fma_per_sm_per_cycle / A100.cuda_fp16_fma_per_sm_per_cycle == 4

    def test_cycles_per_us(self):
        assert A100.cycles_per_us == pytest.approx(1410.0)

    def test_dram_bytes_per_cycle(self):
        # 1555 GB/s at 1.41 GHz ~ 1103 B/cycle.
        assert A100.dram_bytes_per_cycle == pytest.approx(1102.8, rel=0.01)


class TestSpecVariants:
    def test_with_returns_modified_copy(self):
        small = A100.with_(num_sms=1)
        assert small.num_sms == 1
        assert A100.num_sms == 108  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            A100.num_sms = 1  # type: ignore[misc]

    def test_v100_is_weaker(self):
        assert V100.peak_tc_fp16_tflops < A100.peak_tc_fp16_tflops
        assert V100.dram_bandwidth_gbps < A100.dram_bandwidth_gbps

    def test_custom_spec_roundtrip(self):
        spec = DeviceSpec(name="toy", num_sms=4)
        assert spec.with_(num_sms=8).num_sms == 8
