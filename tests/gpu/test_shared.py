"""Tests for the shared-memory bank-conflict model."""

import numpy as np
import pytest

from repro.gpu import SharedMemoryModel, SmemLayout


@pytest.fixture()
def smem():
    return SharedMemoryModel()


class TestPhaseTransactions:
    def test_fully_coalesced_is_one_transaction(self, smem):
        # 32 lanes reading 32 consecutive 4-byte words: one transaction.
        addrs = np.arange(32) * 4
        assert smem.transactions_for(addrs, 4) == 1

    def test_same_word_broadcast_is_free(self, smem):
        addrs = np.zeros(32, dtype=np.int64)
        assert smem.transactions_for(addrs, 4) == 1

    def test_two_way_conflict(self, smem):
        # Lanes alternate between bank 0 word 0 and bank 0 word 32.
        addrs = np.array([0, 128] * 16)
        assert smem.transactions_for(addrs, 4) == 2

    def test_32_way_conflict(self, smem):
        # All lanes hit bank 0 at 32 distinct words.
        addrs = np.arange(32) * 128
        assert smem.transactions_for(addrs, 4) == 32

    def test_stride_two_conflict(self, smem):
        # Stride-2 word access: 16 banks used, 2 words per bank.
        addrs = np.arange(32) * 8
        assert smem.transactions_for(addrs, 4) == 2

    def test_wide_access_splits_into_phases(self, smem):
        # 128-bit access by 32 lanes, consecutive: each phase of 8 lanes
        # covers 32 banks exactly once -> 4 transactions total.
        addrs = np.arange(32) * 16
        assert smem.transactions_for(addrs, 16) == 4

    def test_rejects_2d_addresses(self, smem):
        with pytest.raises(ValueError):
            smem.transactions_for(np.zeros((2, 16)), 4)


class TestRecording:
    def test_access_accumulates_stats(self, smem):
        smem.access(np.arange(32) * 4, 4)
        smem.access(np.arange(32) * 128, 4)
        assert smem.stats.accesses == 2
        assert smem.stats.transactions == 1 + 32
        assert smem.stats.conflicts == 0 + 31

    def test_conflict_rate(self, smem):
        smem.access(np.arange(32) * 4, 4)
        assert smem.stats.conflict_rate == 0.0
        smem.access(np.array([0, 128] * 16), 4)
        assert smem.stats.conflict_rate == pytest.approx(0.5)

    def test_reset(self, smem):
        smem.access(np.arange(32) * 4, 4)
        smem.reset()
        assert smem.stats.accesses == 0

    def test_stats_scaling(self, smem):
        smem.access(np.arange(32) * 128, 4)
        scaled = smem.stats.scaled(3)
        assert scaled.transactions == 96
        assert scaled.conflicts == 93


class TestLdmatrixConflicts:
    """The Figure-7 scenarios from the paper."""

    def test_unpadded_64wide_rows_conflict_8way(self, smem):
        # 64 fp16 per row = 128 B stride: rows 0..7 all start at bank 0.
        layout = SmemLayout(rows=64, cols=64, pad_elems=0)
        tx = smem.ldmatrix_access(layout.row_addresses(np.arange(8), 0))
        assert tx == 8

    def test_padded_rows_conflict_free(self, smem):
        # Pad 4 banks (8 fp16): the 8x8 tile now covers all 32 banks.
        layout = SmemLayout(rows=64, cols=64, pad_elems=8)
        tx = smem.ldmatrix_access(layout.row_addresses(np.arange(8), 0))
        assert tx == 1

    def test_padded_rows_conflict_free_at_any_column(self, smem):
        layout = SmemLayout(rows=64, cols=64, pad_elems=8)
        for col0 in (0, 8, 16, 24, 32, 40, 48, 56):
            tx = smem.ldmatrix_access(layout.row_addresses(np.arange(8), col0))
            assert tx == 1, f"conflict at col0={col0}"

    def test_reordered_rows_can_conflict_even_when_padded(self, smem):
        # Paper Figure 7(b): after MMA_TILE reorder, rows r and r+16 share
        # banks under the padded 144-byte stride (144*16 = 2304 = 72 words
        # = 8 banks apart per step; r and r+16 land 128 words apart mod 32
        # banks -> same bank). Mixing such rows in one ldmatrix stage
        # conflicts; the reorder-scheme preference avoids it.
        layout = SmemLayout(rows=64, cols=64, pad_elems=8)
        rows = np.array([0, 16, 32, 48, 1, 17, 33, 49])
        tx = smem.ldmatrix_access(layout.row_addresses(rows, 0))
        assert tx > 1

    def test_requires_exactly_8_rows(self, smem):
        layout = SmemLayout(rows=8, cols=8)
        with pytest.raises(ValueError):
            smem.ldmatrix_access(layout.row_addresses(np.arange(4), 0))


class TestSmemLayout:
    def test_row_stride(self):
        layout = SmemLayout(rows=64, cols=64, pad_elems=8)
        assert layout.row_stride_bytes == 144

    def test_size(self):
        layout = SmemLayout(rows=64, cols=64, pad_elems=8)
        assert layout.size_bytes == 64 * 144

    def test_address_math(self):
        layout = SmemLayout(rows=4, cols=4, elem_bytes=2, base_offset=100)
        assert layout.address(0, 0) == 100
        assert layout.address(1, 2) == 100 + 8 + 4

    def test_vector_addresses(self):
        layout = SmemLayout(rows=4, cols=8)
        addrs = layout.address(np.array([0, 1]), np.array([0, 0]))
        assert list(addrs) == [0, 16]
