"""Tests for the scheduler's memory hierarchy and critical-path floor."""

import pytest

from repro.gpu import (
    A100,
    BlockWork,
    KernelTrace,
    Op,
    simulate_launch,
)


def trace_with(
    load_sectors=0,
    l1_bytes=0.0,
    footprint=None,
    critical=0.0,
    nblocks=1080,
    mma=100,
):
    trace = KernelTrace(
        kernel_name="mem",
        threads_per_block=256,
        smem_bytes_per_block=16 * 1024,
        footprint_bytes=footprint,
    )
    work = BlockWork(weight=nblocks)
    work.mix.emit(Op.MMA_SP_M16N8K32_F16, mma)
    work.gmem.load_sectors = load_sectors
    work.gmem.load_requests = max(1, load_sectors // 4)
    work.gmem.useful_load_bytes = load_sectors * 32
    work.l1_gather_bytes = l1_bytes
    work.critical_path_cycles = critical
    trace.add_block(work)
    return trace


class TestFootprintCapping:
    def test_rereads_become_l2_hits(self):
        # Same moved bytes; tiny footprint -> DRAM charge capped, L2 binds.
        heavy = simulate_launch(trace_with(load_sectors=200_000, footprint=None))
        cached = simulate_launch(
            trace_with(load_sectors=200_000, footprint=1_000_000.0)
        )
        assert cached.duration_us < heavy.duration_us

    def test_footprint_larger_than_moved_changes_nothing(self):
        a = simulate_launch(trace_with(load_sectors=50_000, footprint=None))
        b = simulate_launch(trace_with(load_sectors=50_000, footprint=1e12))
        assert a.duration_us == pytest.approx(b.duration_us)

    def test_l2_bandwidth_still_charged(self):
        # Even fully cached, enough moved bytes bound the kernel via L2.
        small = simulate_launch(trace_with(load_sectors=10_000, footprint=1.0))
        big = simulate_launch(trace_with(load_sectors=1_000_000, footprint=1.0))
        assert big.duration_us > small.duration_us


class TestL1Gathers:
    def test_l1_traffic_costs_time(self):
        base = simulate_launch(trace_with())
        gather = simulate_launch(trace_with(l1_bytes=5e6))
        assert gather.duration_us > base.duration_us

    def test_l1_served_per_sm(self):
        # Doubling SM count halves L1-bound time (per-SM bandwidth).
        t = trace_with(l1_bytes=5e6)
        full = simulate_launch(t, A100)
        doubled = simulate_launch(t, A100.with_(num_sms=216))
        assert doubled.duration_us < full.duration_us


class TestCriticalPathFloor:
    def test_floor_binds_idle_kernels(self):
        fast = simulate_launch(trace_with(mma=1, critical=0.0, nblocks=108))
        floored = simulate_launch(trace_with(mma=1, critical=50_000.0, nblocks=108))
        assert floored.duration_us > fast.duration_us
        # The floor is visible as ~critical path cycles.
        assert floored.duration_cycles >= 50_000.0

    def test_floor_scales_with_waves(self):
        one_wave = simulate_launch(trace_with(mma=1, critical=10_000.0, nblocks=108))
        bps = one_wave.blocks_per_sm
        many = simulate_launch(
            trace_with(mma=1, critical=10_000.0, nblocks=108 * bps * 3)
        )
        assert many.duration_cycles > 2.5 * 10_000.0

    def test_floor_invisible_under_heavy_work(self):
        heavy = simulate_launch(trace_with(mma=200_000, critical=100.0))
        heavier = simulate_launch(trace_with(mma=200_000, critical=0.0))
        assert heavy.duration_us == pytest.approx(heavier.duration_us, rel=0.01)


class TestSmemReplayDiscount:
    def test_conflict_replays_cost_half(self):
        t_clean = trace_with()
        t_clean.blocks[0].smem.accesses = 1000
        t_clean.blocks[0].smem.transactions = 1000
        t_conf = trace_with()
        t_conf.blocks[0].smem.accesses = 1000
        t_conf.blocks[0].smem.transactions = 8000
        t_conf.blocks[0].smem.conflicts = 7000
        clean = simulate_launch(t_clean)
        conflicted = simulate_launch(t_conf)
        # 7000 replays at 0.5 cycles: effective 4500 vs 1000 transactions.
        assert conflicted.smem_limited_cycles == pytest.approx(
            clean.smem_limited_cycles * 4.5, rel=0.01
        )
