"""Tests for occupancy and the launch-duration model."""

import pytest

from repro.gpu import (
    A100,
    BlockWork,
    InstructionMix,
    KernelTrace,
    Op,
    StallEstimate,
    occupancy_blocks_per_sm,
    simulate_launch,
)


def make_trace(nblocks=108, threads=256, smem=32 * 1024, mma_per_block=1000):
    trace = KernelTrace(
        kernel_name="toy",
        threads_per_block=threads,
        smem_bytes_per_block=smem,
    )
    work = BlockWork(weight=nblocks)
    work.mix.emit(Op.MMA_SP_M16N8K32_F16, mma_per_block)
    work.gmem.load_sectors = 1000
    work.gmem.load_requests = 100
    work.gmem.useful_load_bytes = 32000
    trace.add_block(work)
    return trace


class TestOccupancy:
    def test_smem_limited(self):
        trace = make_trace(smem=82 * 1024)
        assert occupancy_blocks_per_sm(trace) == 2

    def test_threads_limited(self):
        trace = make_trace(threads=1024, smem=1024)
        trace.regs_per_thread = 32
        # 2048 max threads / 1024 per block = 2 blocks.
        assert occupancy_blocks_per_sm(trace) == 2

    def test_register_limited(self):
        trace = make_trace(threads=1024, smem=1024)
        # 64 regs x 1024 threads = a full 64K register file: 1 block.
        assert trace.regs_per_thread == 64
        assert occupancy_blocks_per_sm(trace) == 1

    def test_jigsaw_smem_footprints(self):
        # Paper Section 4.1: BLOCK_TILE 16/32/64 use 21.25/24.83/27.65 KB;
        # all leave multiple co-resident blocks for latency hiding.
        for kb in (21.25, 24.83, 27.65):
            trace = make_trace(smem=int(kb * 1024))
            assert occupancy_blocks_per_sm(trace) >= 4

    def test_block_cap(self):
        trace = make_trace(threads=32, smem=0)
        assert occupancy_blocks_per_sm(trace) <= A100.max_blocks_per_sm

    def test_rejects_oversized_block(self):
        trace = make_trace(smem=200 * 1024)
        with pytest.raises(ValueError):
            occupancy_blocks_per_sm(trace)

    def test_rejects_too_many_threads(self):
        trace = make_trace(threads=2048)
        with pytest.raises(ValueError):
            occupancy_blocks_per_sm(trace)


class TestDurationModel:
    def test_duration_positive(self):
        profile = simulate_launch(make_trace())
        assert profile.duration_us > 0

    def test_duration_monotone_in_compute(self):
        small = simulate_launch(make_trace(mma_per_block=1000))
        big = simulate_launch(make_trace(mma_per_block=100000))
        assert big.duration_us > small.duration_us

    def test_duration_monotone_in_blocks(self):
        few = simulate_launch(make_trace(nblocks=108, mma_per_block=50000))
        many = simulate_launch(make_trace(nblocks=1080, mma_per_block=50000))
        assert many.duration_us > few.duration_us

    def test_wave_quantization_penalty(self):
        # 1.1 waves must not be cheaper than 10% more than 1.0 waves.
        trace_full = make_trace(nblocks=108 * 5, smem=32 * 1024, mma_per_block=20000)
        bps = occupancy_blocks_per_sm(trace_full)
        full = simulate_launch(make_trace(nblocks=108 * bps, mma_per_block=20000))
        spill = simulate_launch(make_trace(nblocks=108 * bps + 10, mma_per_block=20000))
        assert spill.duration_us > full.duration_us

    def test_stalls_add_to_duration(self):
        base = make_trace()
        stalled = make_trace()
        stalled.blocks[0].stalls = StallEstimate(long_scoreboard_cycles=1e6)
        assert simulate_launch(stalled).duration_us > simulate_launch(base).duration_us

    def test_stall_metrics_reported(self):
        trace = make_trace()
        trace.blocks[0].stalls = StallEstimate(
            long_scoreboard_cycles=5000.0, short_scoreboard_cycles=100.0
        )
        profile = simulate_launch(trace)
        assert profile.warp_long_scoreboard > 0
        assert profile.warp_short_scoreboard > 0
        assert profile.warp_long_scoreboard > profile.warp_short_scoreboard

    def test_empty_trace_rejected(self):
        trace = KernelTrace("empty", 256, 0)
        with pytest.raises(ValueError):
            simulate_launch(trace)

    def test_profile_summary_mentions_kernel(self):
        profile = simulate_launch(make_trace())
        assert "toy" in profile.summary()

    def test_speedup_over(self):
        fast = simulate_launch(make_trace(mma_per_block=1000))
        slow = simulate_launch(make_trace(mma_per_block=100000))
        assert fast.speedup_over(slow) > 1

    def test_bound_is_compute_for_mma_heavy_kernel(self):
        profile = simulate_launch(make_trace(mma_per_block=10_000_000))
        assert profile.bound == "compute"

    def test_weighted_blocks_equal_explicit_blocks(self):
        # One representative block with weight 10 must time identically to
        # ten identical unit-weight blocks.
        t1 = make_trace(nblocks=10)
        t2 = KernelTrace("toy", 256, 32 * 1024)
        for _ in range(10):
            w = BlockWork(weight=1)
            w.mix.emit(Op.MMA_SP_M16N8K32_F16, 1000)
            w.gmem.load_sectors = 1000
            w.gmem.load_requests = 100
            w.gmem.useful_load_bytes = 32000
            t2.add_block(w)
        p1, p2 = simulate_launch(t1), simulate_launch(t2)
        assert p1.duration_us == pytest.approx(p2.duration_us, rel=1e-6)


class TestInstructionMix:
    def test_emit_and_total(self):
        mix = InstructionMix()
        mix.emit(Op.LDS, 10)
        mix.emit(Op.MMA_SP_M16N8K32_F16, 5)
        assert mix.total() == 15

    def test_negative_rejected(self):
        mix = InstructionMix()
        with pytest.raises(ValueError):
            mix.emit(Op.LDS, -1)

    def test_issue_cycles_by_unit(self):
        mix = InstructionMix()
        mix.emit(Op.MMA_SP_M16N8K32_F16, 2)  # tc: 2*8 cycles
        mix.emit(Op.LDS, 3)                  # lsu: 3*1
        assert mix.issue_cycles("tc") == 16
        assert mix.issue_cycles("lsu") == 3
        assert mix.issue_cycles() == 19

    def test_shared_memory_instruction_count(self):
        mix = InstructionMix()
        mix.emit(Op.LDS, 2)
        mix.emit(Op.LDMATRIX_X4, 3)
        mix.emit(Op.LDG, 7)  # global, not shared
        assert mix.shared_memory_instructions() == 5

    def test_scaled(self):
        mix = InstructionMix()
        mix.emit(Op.LDS, 4)
        assert mix.scaled(2.5).count(Op.LDS) == 10
