"""Tests for the async-copy / pipeline stall model."""

import pytest

from repro.gpu import A100, PipelineConfig, estimate_block_stalls


class TestPipelineConfig:
    def test_defaults(self):
        cfg = PipelineConfig()
        assert cfg.stages == 2
        assert cfg.uses_async_copy
        assert cfg.indirect_dependency_exposed

    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            PipelineConfig(stages=0)


class TestStallEstimates:
    def test_indirect_dependency_exposes_dram_latency(self):
        exposed = estimate_block_stalls(
            PipelineConfig(stages=2, indirect_dependency_exposed=True), 100, 4.0
        )
        hidden = estimate_block_stalls(
            PipelineConfig(stages=3, indirect_dependency_exposed=False), 100, 4.0
        )
        # Jigsaw v2's deepened pipeline removes the per-iteration DRAM
        # round trip behind col_idx_array (paper Section 3.4.2).
        assert exposed.long_scoreboard_cycles - hidden.long_scoreboard_cycles >= (
            100 * A100.dram_latency_cycles * 0.8
        )

    def test_no_async_copy_is_worse(self):
        sync = estimate_block_stalls(
            PipelineConfig(uses_async_copy=False, indirect_dependency_exposed=False), 50, 2.0
        )
        async_ = estimate_block_stalls(
            PipelineConfig(uses_async_copy=True, indirect_dependency_exposed=False), 50, 2.0
        )
        assert sync.long_scoreboard_cycles > async_.long_scoreboard_cycles

    def test_deeper_pipeline_hides_more_smem_latency(self):
        shallow = estimate_block_stalls(
            PipelineConfig(stages=2, indirect_dependency_exposed=False), 100, 8.0
        )
        deep = estimate_block_stalls(
            PipelineConfig(stages=3, indirect_dependency_exposed=False), 100, 8.0
        )
        assert deep.short_scoreboard_cycles < shallow.short_scoreboard_cycles

    def test_zero_iterations_only_pays_fill(self):
        est = estimate_block_stalls(PipelineConfig(stages=2), 0, 4.0)
        assert est.long_scoreboard_cycles == 2 * A100.dram_latency_cycles
        assert est.short_scoreboard_cycles == 0
        assert est.barrier_cycles == 0

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            estimate_block_stalls(PipelineConfig(), -1, 1.0)

    def test_total_sums_components(self):
        est = estimate_block_stalls(PipelineConfig(), 10, 4.0)
        assert est.total == pytest.approx(
            est.long_scoreboard_cycles + est.short_scoreboard_cycles + est.barrier_cycles
        )


class TestWarpMaps:
    def test_metadata_lanes_f0(self):
        from repro.gpu import metadata_provider_lanes

        lanes = metadata_provider_lanes(0)
        # Paper Figure 9: with F=0, threads 0,1,4,5,...,28,29 provide
        # metadata.
        assert list(lanes) == [0, 1, 4, 5, 8, 9, 12, 13, 16, 17, 20, 21, 24, 25, 28, 29]

    def test_metadata_lanes_f1_disjoint_complement(self):
        from repro.gpu import metadata_provider_lanes

        l0 = set(metadata_provider_lanes(0).tolist())
        l1 = set(metadata_provider_lanes(1).tolist())
        assert l0.isdisjoint(l1)
        assert l0 | l1 == set(range(32))

    def test_metadata_lanes_invalid_selector(self):
        from repro.gpu import metadata_provider_lanes

        with pytest.raises(ValueError):
            metadata_provider_lanes(2)

    def test_accumulator_owner_range(self):
        from repro.gpu import accumulator_owner_lane

        lanes = {accumulator_owner_lane(r, c) for r in range(16) for c in range(8)}
        assert lanes == set(range(32))

    def test_fragment_registers_reasonable(self):
        from repro.gpu import fragment_registers

        # m16n8k16 fp16 fragments: A 512B + B 256B + C 512B = 1280B / 128 = 10.
        assert fragment_registers(16, 8, 16) == 10
