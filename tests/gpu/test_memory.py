"""Tests for the global-memory sector-coalescing model."""

import numpy as np
import pytest

from repro.gpu import GlobalMemoryModel


@pytest.fixture()
def gmem():
    return GlobalMemoryModel()


class TestSectorCounting:
    def test_fully_coalesced_128bit_loads(self, gmem):
        # 32 lanes x 16 B consecutive = 512 B = 16 sectors.
        addrs = np.arange(32) * 16
        assert gmem.sectors_for(addrs, 16) == 16

    def test_coalesced_4byte_loads(self, gmem):
        # 32 lanes x 4 B consecutive = 128 B = 4 sectors.
        addrs = np.arange(32) * 4
        assert gmem.sectors_for(addrs, 4) == 4

    def test_strided_loads_waste_sectors(self, gmem):
        # 4-byte loads strided by 128 B: every lane its own sector.
        addrs = np.arange(32) * 128
        assert gmem.sectors_for(addrs, 4) == 32

    def test_same_address_single_sector(self, gmem):
        addrs = np.zeros(32, dtype=np.int64)
        assert gmem.sectors_for(addrs, 4) == 1

    def test_access_straddling_sector_boundary(self, gmem):
        # A 16 B access at offset 24 touches two sectors.
        assert gmem.sectors_for(np.array([24]), 16) == 2

    def test_misaligned_warp_pays_one_extra_sector(self, gmem):
        addrs = np.arange(32) * 4 + 4  # shifted by one word
        assert gmem.sectors_for(addrs, 4) == 5


class TestRecording:
    def test_load_stats(self, gmem):
        gmem.load(np.arange(32) * 16, 16)
        assert gmem.stats.load_requests == 1
        assert gmem.stats.load_sectors == 16
        assert gmem.stats.useful_load_bytes == 512
        assert gmem.stats.load_efficiency == 1.0

    def test_store_stats(self, gmem):
        gmem.store(np.arange(32) * 128, 4)
        assert gmem.stats.store_sectors == 32
        assert gmem.stats.moved_store_bytes == 32 * 32

    def test_uncoalesced_efficiency(self, gmem):
        gmem.load(np.arange(32) * 128, 4)
        assert gmem.stats.load_efficiency == pytest.approx(4 / 32)

    def test_merge_and_scale(self, gmem):
        gmem.load(np.arange(32) * 16, 16)
        scaled = gmem.stats.scaled(10)
        assert scaled.load_sectors == 160
        other = GlobalMemoryModel()
        other.load(np.arange(32) * 16, 16)
        other.stats.merge(scaled)
        assert other.stats.load_sectors == 176

    def test_reset(self, gmem):
        gmem.load(np.arange(32) * 16, 16)
        gmem.reset()
        assert gmem.stats.load_requests == 0


class TestTileLoads:
    def test_contiguous_rows_fully_coalesced(self, gmem):
        # 8 rows x 128 B from a 128 B-stride matrix: 1024 B = 32 sectors.
        sectors = gmem.load_rowmajor_tile(
            base=0, row_ids=np.arange(8), row_stride_bytes=128, row_bytes=128
        )
        assert sectors == 32
        assert gmem.stats.load_efficiency == 1.0

    def test_gathered_rows_cost_same_when_rows_are_sector_multiples(self, gmem):
        # Jigsaw's col_idx gather reads whole 128 B rows; scattering row ids
        # does not waste sectors because each row covers full sectors.
        sectors = gmem.load_rowmajor_tile(
            base=0, row_ids=np.array([5, 99, 2, 64, 31, 7, 80, 11]),
            row_stride_bytes=128, row_bytes=128,
        )
        assert sectors == 32
        assert gmem.stats.load_efficiency == 1.0

    def test_narrow_rows_waste_sectors(self, gmem):
        # 16 B useful per row from scattered 128 B-stride rows: each row
        # still occupies one 32 B sector -> efficiency 0.5.
        gmem.load_rowmajor_tile(
            base=0, row_ids=np.arange(0, 64, 2), row_stride_bytes=128, row_bytes=16
        )
        assert gmem.stats.load_efficiency == pytest.approx(0.5)

    def test_dram_cycles_positive(self, gmem):
        gmem.load_rowmajor_tile(
            base=0, row_ids=np.arange(8), row_stride_bytes=128, row_bytes=128
        )
        assert gmem.dram_cycles() > 0
