"""Numerical-behaviour tests of the tensor-core models.

Tensor cores multiply fp16 operands and accumulate in fp32; the models
must show the same numerics (the paper's kernels are fp16 end to end,
so downstream users care that error does not blow up with K).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import MmaShape, compress_2to4, mma_dense, mma_sp


def random_2to4(m, k, rng):
    a = np.zeros((m, k), dtype=np.float16)
    for i in range(m):
        for g in range(k // 4):
            pos = rng.choice(4, size=2, replace=False)
            a[i, g * 4 + pos] = rng.standard_normal(2).astype(np.float16)
    return a


class TestAccumulatorPrecision:
    def test_fp32_accumulate_beats_fp16(self, rng):
        # Summing many same-sign products overflows/saturates in fp16 but
        # not in the fp32 accumulator the models use.
        a = np.full((16, 16), 4.0, dtype=np.float16)
        b = np.full((16, 8), 4.0, dtype=np.float16)
        c = np.zeros((16, 8), np.float32)
        d = mma_dense(a, b, c)
        assert np.all(np.isfinite(d))
        assert d[0, 0] == pytest.approx(16 * 16.0)

    def test_chained_accumulation(self, rng):
        # C flows through a k-loop exactly like a kernel's accumulator.
        acc = np.zeros((16, 8), np.float32)
        total = np.zeros((16, 8), np.float64)
        for _ in range(32):
            a = rng.standard_normal((16, 16)).astype(np.float16)
            b = rng.standard_normal((16, 8)).astype(np.float16)
            acc = mma_dense(a, b, acc)
            total += a.astype(np.float64) @ b.astype(np.float64)
        # Relative error stays at fp16-rounding scale, not fp16-range scale.
        scale = np.abs(total).max()
        assert np.abs(acc - total).max() / scale < 1e-2

    @given(st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_sparse_error_bounded_in_k_chain(self, chain):
        rng = np.random.default_rng(chain)
        acc = np.zeros((16, 8), np.float32)
        ref = np.zeros((16, 8), np.float64)
        for _ in range(chain):
            a = random_2to4(16, 32, rng)
            vals, meta = compress_2to4(a)
            b = rng.standard_normal((32, 8)).astype(np.float16)
            acc = mma_sp(vals, meta, b, acc)
            ref += a.astype(np.float64) @ b.astype(np.float64)
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(acc - ref).max() / scale < 2e-2


class TestSubnormalsAndSpecials:
    def test_zero_operands(self):
        a = np.zeros((16, 16), np.float16)
        b = np.zeros((16, 8), np.float16)
        c = np.ones((16, 8), np.float32)
        np.testing.assert_array_equal(mma_dense(a, b, c), c)

    def test_tiny_values_do_not_flush_in_accumulator(self):
        a = np.full((16, 16), np.float16(6e-5), dtype=np.float16)  # near fp16 min-normal
        b = np.full((16, 8), np.float16(6e-5), dtype=np.float16)
        c = np.zeros((16, 8), np.float32)
        d = mma_dense(a, b, c)
        assert np.all(d > 0)  # products live in fp32

    def test_wide_k_shape_numerics(self, rng):
        a = rng.standard_normal((16, 32)).astype(np.float16)
        b = rng.standard_normal((32, 8)).astype(np.float16)
        c = np.zeros((16, 8), np.float32)
        d = mma_dense(a, b, c, shape=MmaShape(16, 8, 32))
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(d, ref, rtol=1e-6)
