"""Tests for the speed-of-light timeline reports."""

import numpy as np
import pytest

from repro.gpu import compare_timelines, pipe_utilization, render_timeline
from repro.core import JigsawPlan
from tests.conftest import random_vector_sparse


@pytest.fixture(scope="module")
def profile():
    rng = np.random.default_rng(4)
    a = random_vector_sparse(128, 256, v=4, sparsity=0.9, rng=rng)
    b = rng.standard_normal((256, 128)).astype(np.float16)
    plan = JigsawPlan(a, block_tiles=(64,))
    return (
        plan.run(b, version="v0", want_output=False).profile,
        plan.run(b, version="v3", want_output=False).profile,
    )


class TestPipeUtilization:
    def test_fractions_bounded(self, profile):
        _, p3 = profile
        util = pipe_utilization(p3)
        assert set(util) == {
            "tensor core",
            "memory (DRAM/L2/L1)",
            "shared memory",
            "issue slots",
            "exposed stalls",
        }
        for frac in util.values():
            assert 0.0 <= frac <= 1.0

    def test_v0_has_higher_smem_pressure(self, profile):
        p0, p3 = profile
        assert pipe_utilization(p0)["shared memory"] > pipe_utilization(p3)["shared memory"]


class TestRendering:
    def test_report_structure(self, profile):
        _, p3 = profile
        text = render_timeline(p3)
        assert "verdict" in text
        assert "bank conflicts" in text
        assert "|" in text  # bars rendered

    def test_compare_stacks_two_reports(self, profile):
        p0, p3 = profile
        text = compare_timelines(p0, p3)
        assert text.count("verdict") == 2

    def test_cli_inspect(self, capsys):
        from repro.cli import main

        rc = main(
            ["inspect", "--m", "128", "--k", "128", "--n", "64", "--sparsity",
             "0.9", "--v", "4", "--version", "v3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict" in out
