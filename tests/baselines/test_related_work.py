"""Tests for the related-work baselines: cuSPARSE and vectorSparse."""

import numpy as np
import pytest

from repro.baselines import (
    clasp_spmm,
    cublas_hgemm,
    cusparse_spmm,
    sputnik_spmm,
    vectorsparse_spmm,
)
from repro.formats import CSRMatrix
from tests.conftest import random_vector_sparse


class TestCusparse:
    def test_functional(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        b = rng.standard_normal((128, 64)).astype(np.float16)
        res = cusparse_spmm(a, b)
        np.testing.assert_allclose(
            res.c, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-3, atol=1e-2
        )

    def test_accepts_csr(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        b = rng.standard_normal((128, 32)).astype(np.float16)
        res = cusparse_spmm(CSRMatrix.from_dense(a), b, want_output=False)
        assert res.profile.duration_us > 0

    def test_slower_than_sputnik(self, rng):
        # Paper Section 5: Sputnik's 1-D tiling + row swizzle + vector
        # access beat the library CSR kernel on DL sparsities.
        a = random_vector_sparse(1024, 1024, v=4, sparsity=0.9, rng=rng)
        b = np.zeros((1024, 512), np.float16)
        d_lib = cusparse_spmm(a, b, want_output=False).profile.duration_us
        d_spk = sputnik_spmm(a, b, want_output=False).profile.duration_us
        assert d_lib > d_spk

    def test_straggler_sensitivity(self, rng):
        # Without row swizzle, one heavy row slows its whole block.
        balanced = random_vector_sparse(256, 512, v=4, sparsity=0.9, rng=rng)
        skewed = balanced.copy()
        skewed[0, :] = 1.0  # one dense row
        b = np.zeros((512, 256), np.float16)
        d_bal = cusparse_spmm(balanced, b, want_output=False).profile.duration_us
        d_skew = cusparse_spmm(skewed, b, want_output=False).profile.duration_us
        assert d_skew >= d_bal

    def test_empty_matrix(self, rng):
        a = np.zeros((64, 64), np.float16)
        b = rng.standard_normal((64, 32)).astype(np.float16)
        res = cusparse_spmm(a, b)
        np.testing.assert_array_equal(res.c, np.zeros((64, 32), np.float32))


class TestVectorSparse:
    def test_functional(self, rng):
        a = random_vector_sparse(64, 128, v=8, sparsity=0.9, rng=rng)
        b = rng.standard_normal((128, 64)).astype(np.float16)
        res = vectorsparse_spmm(a, b, pv=8)
        np.testing.assert_allclose(
            res.c, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-3, atol=1e-2
        )

    def test_rejects_indivisible_m(self, rng):
        with pytest.raises(ValueError):
            vectorsparse_spmm(np.zeros((30, 16), np.float16), np.zeros((16, 8), np.float16), pv=8)

    def test_beats_cublas_only_at_high_sparsity(self, rng):
        # Paper Section 5: "it outperformed cuBLAS on the A100
        # architecture only at a high sparsity level".
        b = np.zeros((1024, 1024), np.float16)
        a80 = random_vector_sparse(1024, 1024, v=8, sparsity=0.80, rng=rng)
        a98 = random_vector_sparse(1024, 1024, v=8, sparsity=0.98, rng=rng)
        cu = cublas_hgemm(a80, b, want_output=False).profile.duration_us
        assert vectorsparse_spmm(a80, b, want_output=False).profile.duration_us > cu
        assert vectorsparse_spmm(a98, b, want_output=False).profile.duration_us < cu

    def test_clasp_supersedes_it(self, rng):
        # CLASP is the Ampere port with async copy; it should win.
        a = random_vector_sparse(1024, 1024, v=8, sparsity=0.9, rng=rng)
        b = np.zeros((1024, 512), np.float16)
        d_vs = vectorsparse_spmm(a, b, want_output=False).profile.duration_us
        d_cl = clasp_spmm(a, b, want_output=False).profile.duration_us
        assert d_cl < d_vs
