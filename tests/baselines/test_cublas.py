"""Tests for the cuBLAS dense GEMM model."""

import numpy as np
import pytest

from repro.baselines import cublas_hgemm, select_tile
from repro.baselines.cublas import HEURISTIC_QUIRKS, CublasTile


class TestFunctional:
    def test_output_matches_numpy(self, rng):
        a = rng.standard_normal((64, 32)).astype(np.float16)
        b = rng.standard_normal((32, 16)).astype(np.float16)
        res = cublas_hgemm(a, b)
        np.testing.assert_allclose(
            res.c, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-6
        )

    def test_rejects_mismatch(self, rng):
        with pytest.raises(ValueError):
            cublas_hgemm(np.zeros((4, 4), np.float16), np.zeros((5, 4), np.float16))


class TestTiming:
    def test_throughput_below_peak(self):
        a = np.zeros((4096, 4096), np.float16)
        b = np.zeros((4096, 4096), np.float16)
        res = cublas_hgemm(a, b, want_output=False)
        tflops = 2 * 4096**3 / (res.profile.duration_us * 1e-6) / 1e12
        # Large GEMMs should land in cuBLAS's realistic 60-95% of the
        # 312 TFLOP/s peak.
        assert 180 < tflops < 300

    def test_duration_scales_with_work(self):
        a1 = np.zeros((1024, 1024), np.float16)
        b1 = np.zeros((1024, 1024), np.float16)
        b2 = np.zeros((1024, 4096), np.float16)
        d1 = cublas_hgemm(a1, b1, want_output=False).profile.duration_us
        d2 = cublas_hgemm(a1, b2, want_output=False).profile.duration_us
        assert 2.0 < d2 / d1 < 6.0

    def test_sparsity_does_not_matter(self, rng):
        # Dense GEMM: the LHS values are irrelevant to the Duration.
        dense = rng.standard_normal((512, 512)).astype(np.float16)
        sparse = np.where(rng.random((512, 512)) < 0.98, 0, dense).astype(np.float16)
        b = np.zeros((512, 256), np.float16)
        d1 = cublas_hgemm(dense, b, want_output=False).profile.duration_us
        d2 = cublas_hgemm(sparse, b, want_output=False).profile.duration_us
        assert d1 == pytest.approx(d2)


class TestHeuristicQuirk:
    def test_quirk_shape_registered(self):
        # Paper Section 4.2: M=2048, K=2048, N=512 over-launches 6x.
        assert HEURISTIC_QUIRKS[(2048, 2048, 512)] == 6

    def test_quirk_selects_splitk(self):
        tile, splitk = select_tile(2048, 512, 2048)
        assert splitk == 6
        assert tile == CublasTile(64, 64)

    def test_anomaly_reproduced(self):
        # Doubling N from 256 to 512 should cost ~3x in achieved
        # throughput at the quirk shape (roughly 6x in time).
        a = np.zeros((2048, 2048), np.float16)
        d256 = cublas_hgemm(a, np.zeros((2048, 256), np.float16), want_output=False).profile.duration_us
        d512 = cublas_hgemm(a, np.zeros((2048, 512), np.float16), want_output=False).profile.duration_us
        degradation = (d512 / 2) / d256
        assert 2.0 < degradation < 4.5

    def test_no_quirk_elsewhere(self):
        _, splitk = select_tile(2048, 1024, 2048)
        assert splitk == 1

    def test_tile_selection_prefers_occupancy_for_small_grids(self):
        tile, _ = select_tile(256, 256, 4096)
        assert tile.bm <= 128
