"""Tests for Sputnik, CLASP, Magicube, SparTA, cuSparseLt, VENOM models."""

import numpy as np
import pytest

from repro.baselines import (
    clasp_spmm,
    cublas_hgemm,
    cusparselt_spmm,
    decompose_2to4,
    magicube_spmm,
    sparta_spmm,
    sputnik_spmm,
    venom_spmm,
)
from repro.formats import CSRMatrix, VenomMatrix, satisfies_nm, venom_prune
from tests.conftest import random_vector_sparse


@pytest.fixture()
def problem(rng):
    a = random_vector_sparse(128, 256, v=4, sparsity=0.9, rng=rng)
    b = rng.standard_normal((256, 64)).astype(np.float16)
    ref = a.astype(np.float32) @ b.astype(np.float32)
    return a, b, ref


class TestSputnik:
    def test_functional(self, problem):
        a, b, ref = problem
        res = sputnik_spmm(a, b)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    def test_accepts_csr_directly(self, problem, rng):
        a, b, ref = problem
        res = sputnik_spmm(CSRMatrix.from_dense(a), b)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    def test_duration_scales_with_nnz(self, rng):
        b = rng.standard_normal((1024, 1024)).astype(np.float16)
        d = {}
        for sp in (0.8, 0.98):
            a = random_vector_sparse(1024, 1024, v=4, sparsity=sp, rng=rng)
            d[sp] = sputnik_spmm(a, b, want_output=False).profile.duration_us
        assert d[0.8] > d[0.98]

    def test_latency_floor_at_high_sparsity(self, rng):
        # Sputnik must not run 10x faster at 98% than at 80% — the
        # pointer-chase floor keeps it near cuBLAS (paper Section 4.2).
        b = rng.standard_normal((1024, 1024)).astype(np.float16)
        a80 = random_vector_sparse(1024, 1024, v=4, sparsity=0.80, rng=rng)
        a98 = random_vector_sparse(1024, 1024, v=4, sparsity=0.98, rng=rng)
        d80 = sputnik_spmm(a80, b, want_output=False).profile.duration_us
        d98 = sputnik_spmm(a98, b, want_output=False).profile.duration_us
        assert d80 / d98 < 6.0


class TestClasp:
    def test_functional(self, problem):
        a, b, ref = problem
        res = clasp_spmm(a, b)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    def test_pv_autotune_picks_matching_width(self, rng):
        # With v=8 data, pv=8 gives 100% MMA utilization and must win.
        a = random_vector_sparse(128, 512, v=8, sparsity=0.9, rng=rng)
        b = rng.standard_normal((512, 256)).astype(np.float16)
        best = clasp_spmm(a, b, want_output=False)
        assert "pv8" in best.profile.kernel_name

    def test_wider_vectors_run_faster(self, rng):
        b = rng.standard_normal((512, 512)).astype(np.float16)
        d = {}
        for v in (2, 8):
            a = random_vector_sparse(512, 512, v=v, sparsity=0.9, rng=rng)
            d[v] = clasp_spmm(a, b, want_output=False).profile.duration_us
        # Paper: CLASP's MMA utilization is 25% at v=2 vs 100% at v=8.
        assert d[2] > d[8]

    def test_rejects_indivisible_m(self, rng):
        a = np.zeros((30, 16), np.float16)
        b = np.zeros((16, 8), np.float16)
        with pytest.raises(ValueError):
            clasp_spmm(a, b, pv_candidates=(4,))


class TestMagicube:
    def test_functional(self, problem):
        a, b, ref = problem
        res = magicube_spmm(a, b, v=4)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    def test_v8_is_fastest_per_element(self, rng):
        b = rng.standard_normal((512, 512)).astype(np.float16)
        d = {}
        for v in (2, 4, 8):
            a = random_vector_sparse(512, 512, v=v, sparsity=0.9, rng=rng)
            d[v] = magicube_spmm(a, b, v=v, want_output=False).profile.duration_us
        # Paper: Magicube is specifically optimized at v=8.
        assert d[8] < d[4] < d[2]

    def test_rejects_unsupported_v(self, problem):
        a, b, _ = problem
        with pytest.raises(ValueError):
            magicube_spmm(a, b, v=3)

    def test_bank_conflicts_reported(self, rng):
        a = random_vector_sparse(256, 512, v=2, sparsity=0.9, rng=rng)
        b = rng.standard_normal((512, 128)).astype(np.float16)
        res = magicube_spmm(a, b, v=2, want_output=False)
        assert res.profile.smem_bank_conflicts > 0


class TestCusparselt:
    def test_functional_on_conformant(self, rng):
        a = venom_prune(rng.standard_normal((64, 64)).astype(np.float16), v=32)
        b = rng.standard_normal((64, 32)).astype(np.float16)
        res = cusparselt_spmm(a, b)
        np.testing.assert_allclose(
            res.c, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-3, atol=1e-2
        )

    def test_rejects_nonconformant(self, rng):
        a = np.ones((64, 64), np.float16)
        with pytest.raises(ValueError):
            cusparselt_spmm(a, np.zeros((64, 8), np.float16))

    def test_duration_independent_of_sparsity(self, rng):
        # cuSparseLt always computes the full K/2 product: padding a 98%
        # sparse matrix into 2:4 costs the same as a 50% one.
        b = np.zeros((1024, 1024), np.float16)
        a50 = venom_prune(rng.standard_normal((1024, 1024)).astype(np.float16), v=32)
        a_sparse = np.zeros((1024, 1024), np.float16)
        a_sparse[:, 0] = 1.0  # trivially 2:4
        d50 = cusparselt_spmm(a50, b, want_output=False).profile.duration_us
        dsp = cusparselt_spmm(a_sparse, b, want_output=False).profile.duration_us
        assert d50 == pytest.approx(dsp, rel=0.01)

    def test_faster_than_cublas(self, rng):
        a = venom_prune(rng.standard_normal((2048, 2048)).astype(np.float16), v=32)
        b = np.zeros((2048, 2048), np.float16)
        dlt = cusparselt_spmm(a, b, want_output=False).profile.duration_us
        dcu = cublas_hgemm(a, b, want_output=False).profile.duration_us
        assert dlt < dcu


class TestSparta:
    def test_decomposition_partitions_nonzeros(self, rng):
        a = (rng.random((16, 32)) < 0.5).astype(np.float16)
        part, residual = decompose_2to4(a)
        np.testing.assert_array_equal(part + residual, a)
        assert satisfies_nm(part, 2, 4)
        # No element in both parts.
        assert not np.any((part != 0) & (residual != 0))

    def test_decomposition_odd_width(self, rng):
        a = (rng.random((8, 30)) < 0.5).astype(np.float16)
        part, residual = decompose_2to4(a)
        np.testing.assert_array_equal(part + residual, a)

    def test_functional(self, problem):
        a, b, ref = problem
        res = sparta_spmm(a, b)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    def test_sparsity_flat_at_high_sparsity(self, rng):
        # SparTA's cuSparseLt half does not shrink with sparsity, so its
        # duration flattens while Sputnik keeps dropping.
        b = rng.standard_normal((1024, 1024)).astype(np.float16)
        d95 = sparta_spmm(
            random_vector_sparse(1024, 1024, v=4, sparsity=0.95, rng=rng),
            b,
            want_output=False,
        ).profile.duration_us
        d98 = sparta_spmm(
            random_vector_sparse(1024, 1024, v=4, sparsity=0.98, rng=rng),
            b,
            want_output=False,
        ).profile.duration_us
        assert d98 > 0.5 * d95


class TestVenomKernel:
    def test_functional(self, rng):
        dense = venom_prune(rng.standard_normal((64, 64)).astype(np.float16), v=32)
        vm = VenomMatrix.from_dense(dense, v=32)
        b = rng.standard_normal((64, 32)).astype(np.float16)
        res = venom_spmm(vm, b)
        np.testing.assert_allclose(
            res.c, dense.astype(np.float32) @ b.astype(np.float32), rtol=1e-3, atol=1e-2
        )

    def test_larger_v_is_faster(self, rng):
        # Table 3: the Jigsaw/VENOM gap narrows with V because metadata
        # amortizes; VENOM itself speeds up with V.
        b = rng.standard_normal((1024, 512)).astype(np.float16)
        d = {}
        for v in (32, 128):
            dense = venom_prune(
                np.asarray(rng.standard_normal((1024, 1024)), dtype=np.float16), v=v
            )
            vm = VenomMatrix.from_dense(dense, v=v)
            d[v] = venom_spmm(vm, b, want_output=False).profile.duration_us
        assert d[128] <= d[32]
