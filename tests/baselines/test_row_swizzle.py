"""Tests for the row-swizzle load balancer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    balanced_block_cost,
    imbalance,
    row_swizzle_order,
    snake_assign,
)


class TestOrdering:
    def test_descending(self):
        order = row_swizzle_order(np.array([3, 10, 1, 7]))
        assert list(order) == [1, 3, 0, 2]

    def test_stable_ties(self):
        order = row_swizzle_order(np.array([5, 5, 5]))
        assert list(order) == [0, 1, 2]


class TestSnakeAssignment:
    def test_partition(self):
        nnz = np.arange(16)
        blocks = snake_assign(nnz, 4)
        all_rows = np.concatenate(blocks)
        assert sorted(all_rows.tolist()) == list(range(16))
        assert len(blocks) == 4

    def test_balances_clustered_heavy_rows(self):
        # Heavy rows adjacent in memory: contiguous blocks concentrate
        # them; the snake spreads them across blocks.
        nnz = np.array([100] * 8 + [1] * 56)
        assert imbalance(nnz, 4, swizzled=True) < imbalance(nnz, 4, swizzled=False)

    def test_single_giant_row_cannot_be_balanced(self):
        # A row heavier than the ideal block budget bounds the makespan
        # for any scheduler — swizzling neither helps nor hurts.
        nnz = np.array([1000] + [1] * 63)
        sw = imbalance(nnz, 4, swizzled=True)
        assert sw >= 1000 / (nnz.sum() / 16) * 0.99

    def test_uniform_rows_already_balanced(self):
        nnz = np.full(64, 10)
        assert imbalance(nnz, 4, swizzled=True) == pytest.approx(1.0)
        assert imbalance(nnz, 4, swizzled=False) == pytest.approx(1.0)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            snake_assign(np.array([1, 2]), 0)

    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=200),
        st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_snake_makespan_bound(self, nnz_list, rows_per_block):
        # The snake heuristic is not universally better than a lucky
        # contiguous split (hypothesis finds such cases), but its makespan
        # is always bounded by the ideal mean plus one row per snake pass:
        # each block receives at most ceil(len/nblocks) rows, one per
        # pass, and passes are sorted descending.
        nnz = np.array(nnz_list)
        if nnz.sum() == 0:
            return
        from repro.baselines.row_swizzle import block_costs, snake_assign

        blocks = snake_assign(nnz, rows_per_block)
        makespan = block_costs(nnz, blocks).max()
        mean = nnz.sum() / len(blocks)
        assert makespan <= mean + nnz.max() * 2 + 1e-9

    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=200),
        st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_snake_partitions_all_rows(self, nnz_list, rows_per_block):
        nnz = np.array(nnz_list)
        from repro.baselines.row_swizzle import snake_assign

        blocks = snake_assign(nnz, rows_per_block)
        got = sorted(np.concatenate(blocks).tolist())
        assert got == list(range(len(nnz)))


class TestBalancedCost:
    def test_empty(self):
        assert balanced_block_cost(np.array([]), 4) == 0.0

    def test_mean_for_uniform(self):
        nnz = np.full(32, 8)
        assert balanced_block_cost(nnz, 4) == pytest.approx(32.0)

    def test_sputnik_feels_the_tail(self):
        # Two matrices, same nnz, different distributions: Sputnik's
        # makespan rises for the heavy tail.
        import numpy as np

        from repro.baselines import sputnik_spmm

        flat = np.zeros((256, 512), dtype=np.float16)
        flat[:, :32] = 1.0  # 32 nnz per row
        skewed = np.zeros((256, 512), dtype=np.float16)
        skewed[:16, :512] = 1.0  # same total, all in 16 rows
        b = np.zeros((512, 64), np.float16)
        d_flat = sputnik_spmm(flat, b, want_output=False).profile.duration_us
        d_skew = sputnik_spmm(skewed, b, want_output=False).profile.duration_us
        assert d_skew > d_flat
