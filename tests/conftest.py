"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def random_vector_sparse(
    rows: int,
    cols: int,
    v: int,
    sparsity: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A fp16 matrix whose nonzeros are v-tall column vectors.

    This mirrors the paper's workload construction (Section 4.1): take a
    (rows/v, cols) base mask at the target sparsity and replace each
    nonzero with a dense 1-D column vector of width v.
    """
    if rows % v:
        raise ValueError("rows must be divisible by v")
    base = rng.random((rows // v, cols)) >= sparsity
    values = rng.standard_normal((rows, cols)).astype(np.float16)
    # Draw values away from zero so a stored element is never accidentally 0.
    values = np.where(np.abs(values) < 0.05, np.float16(0.5), values)
    mask = np.repeat(base, v, axis=0)
    return np.where(mask, values, np.float16(0))
