"""End-to-end chaos acceptance: kill-every-K with zero lost requests.

This is the PR's acceptance criterion as a tier-1 test: a worker dies
every K batches, every non-poison request still completes with results
bit-identical to the single-process executor, and respawned workers
serve from the shared on-disk plan cache with **zero** reorder work.
"""

import time

import numpy as np

from repro.baselines.cublas import cublas_hgemm
from repro.serve import BatchExecutor, PlanRegistry, SpmmRequest
from repro.shard import Supervisor
from tests.conftest import random_vector_sparse


def _warm_cache(tmp_path, matrices):
    """Pre-warm the shared plan cache so workers never reorder."""
    registry = PlanRegistry(cache_dir=tmp_path, block_tiles=(64,))
    for name, a in matrices.items():
        registry.register(name, a)
    registry.warm()  # plans build lazily: persist the formats to disk now
    return registry


def _reference_results(tmp_path, matrices, requests):
    executor = BatchExecutor(PlanRegistry(cache_dir=tmp_path, block_tiles=(64,)))
    try:
        for name, a in matrices.items():
            executor.registry.register(name, a)
        return [executor.submit(r).result(timeout=60).c for r in requests]
    finally:
        executor.close()


class TestKillEveryK:
    def test_zero_lost_bit_identical_zero_reorder(self, rng, tmp_path):
        matrices = {
            f"w{i}": random_vector_sparse(128, 256, v=8, sparsity=0.9, rng=rng)
            for i in range(3)
        }
        _warm_cache(tmp_path, matrices)
        requests = [
            SpmmRequest(
                matrix=f"w{i % 3}",
                b=rng.standard_normal((256, 16)).astype(np.float16),
                version="v2",  # pins the block tile: deterministic results
            )
            for i in range(12)
        ]

        sup = Supervisor(
            workers=2,
            cache_dir=tmp_path,
            fault_sites=[
                # Kill every 3rd work frame, once per incarnation.
                {"site": "shard.kill", "probability": 1.0, "after": 2, "count": 1}
            ],
        )
        results = []
        with sup:
            sup.wait_ready()
            for name, a in matrices.items():
                sup.router.register_matrix(name, a)
            # Serial submission: bounded in-flight keeps one kill from
            # cascading every queued request onto the next victim.
            for req in requests:
                results.append(sup.router.submit(req).result(timeout=120))

        assert all(r is not None for r in results)  # zero lost
        assert sup.crashes >= 1
        assert sup.respawns >= 1
        assert not sup.router.poisoned_matrices
        # Respawned incarnations admitted plans from the warm disk
        # cache: no worker ever ran a reorder.
        assert sup.router.stats().reorder_runs == 0

        expected = _reference_results(tmp_path, matrices, requests)
        for got, want in zip(results, expected):
            assert np.array_equal(got.c, want)


class TestPoisonIsolation:
    def test_per_matrix_kill_site_poisons_only_that_matrix(self, rng, tmp_path):
        matrices = {
            f"w{i}": random_vector_sparse(128, 256, v=8, sparsity=0.9, rng=rng)
            for i in range(2)
        }
        _warm_cache(tmp_path, matrices)
        panels = [rng.standard_normal((256, 16)).astype(np.float16) for _ in range(4)]

        sup = Supervisor(
            workers=2,
            cache_dir=tmp_path,
            max_redeliveries=1,
            fault_sites=[
                # Every incarnation dies the moment it sees w1 — the
                # poison matrix — while w0 traffic is never touched.
                {"site": "shard.kill.w1", "probability": 1.0}
            ],
        )
        with sup:
            sup.wait_ready()
            for name, a in matrices.items():
                sup.router.register_matrix(name, a)

            poisoned = sup.router.submit(
                SpmmRequest(matrix="w1", b=panels[0], version="v2")
            ).result(timeout=120)
            assert poisoned.stats.route == "dense"
            assert sup.router.poisoned_matrices == {"w1"}
            dense = cublas_hgemm(
                np.ascontiguousarray(matrices["w1"], dtype=np.float16), panels[0]
            ).c
            assert np.array_equal(poisoned.c, dense)

            # The router poisons off its reader threads; the monitor's
            # crash accounting trails by a tick.  Let it settle: both
            # the home shard and the sibling died on w1.
            deadline = time.monotonic() + 30.0
            while sup.crashes < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert sup.crashes == 2

            # The healthy matrix keeps serving through workers, and the
            # poison matrix keeps serving dense — without more crashes.
            crashes_after_poison = sup.crashes
            for b in panels[1:]:
                ok = sup.router.submit(
                    SpmmRequest(matrix="w0", b=b, version="v2")
                ).result(timeout=120)
                assert ok.stats.route != "dense"
                again = sup.router.submit(
                    SpmmRequest(matrix="w1", b=b, version="v2")
                ).result(timeout=120)
                assert again.stats.route == "dense"
            assert sup.crashes == crashes_after_poison
        assert sup.crashes >= 2  # home + sibling died on w1
