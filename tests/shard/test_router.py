"""Router unit tests with in-test fake workers (no processes spawned).

The fake worker speaks the real wire protocol over a socketpair, so
these tests cover the router's forwarding, redelivery, outbox, and
poison machinery against genuine frames — just without the supervisor
or any child process.
"""

import socket
import threading

import numpy as np
import pytest

from repro.baselines.cublas import cublas_hgemm
from repro.sched import AdmissionController, ThrottledError
from repro.serve import SpmmRequest
from repro.shard import ShardRouter, ShardWorkerError, shard_for
from repro.shard import wire
from repro.shard.wire import WireClosedError, recv_msg, send_msg
from tests.conftest import random_vector_sparse


class FakeWorker:
    """Minimal shard worker: serves spmm frames with fp32 numpy matmul."""

    def __init__(self, shard: int, incarnation: int = 0, fail_rids: set | None = None):
        self.shard = shard
        self.incarnation = incarnation
        self.fail_rids = fail_rids or set()
        self.router_side, self.worker_side = socket.socketpair()
        self.registered: dict[str, np.ndarray] = {}
        self.served: list[int] = []
        self.thread = threading.Thread(target=self._loop, daemon=True)

    def start(self):
        self.thread.start()
        return self

    def close(self):
        self.worker_side.close()

    def _loop(self):
        while True:
            try:
                msg = recv_msg(self.worker_side)
            except (WireClosedError, OSError):
                return
            header, arrays = msg
            if header["type"] == "register":
                self.registered[header["name"]] = arrays["a"]
            elif header["type"] == "spmm":
                rid = header["rid"]
                base = {
                    "rid": rid,
                    "shard": self.shard,
                    "incarnation": self.incarnation,
                    "reorder_runs": 0,
                }
                try:
                    if rid in self.fail_rids:
                        send_msg(
                            self.worker_side,
                            {
                                "type": "error",
                                "error_type": "RuntimeError",
                                "message": "injected",
                                **base,
                            },
                        )
                        continue
                    a = self.registered[header["matrix"]]
                    c = a.astype(np.float32) @ arrays["b"].astype(np.float32)
                    self.served.append(rid)
                    send_msg(
                        self.worker_side,
                        {"type": "result", "route": "jigsaw", **base},
                        {"c": c},
                    )
                except OSError:
                    return


@pytest.fixture()
def matrix(rng):
    return random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)


def _panel(rng, k=128, n=8):
    return rng.standard_normal((k, n)).astype(np.float16)


def _name_on_shard(router: ShardRouter, shard: int) -> str:
    for i in range(1000):
        name = f"m{i}"
        if router.shard_for(name) == shard:
            return name
    raise AssertionError("no name found")


class TestHashRing:
    def test_stable_across_instances(self):
        for name in ("w0", "attention.q", "x" * 40):
            assert shard_for(name, 4) == shard_for(name, 4)

    def test_single_shard_short_circuit(self):
        assert shard_for("anything", 1) == 0

    def test_all_shards_reachable(self):
        owners = {shard_for(f"m{i}", 4) for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_adding_a_shard_moves_a_minority(self):
        names = [f"m{i}" for i in range(400)]
        moved = sum(1 for n in names if shard_for(n, 4) != shard_for(n, 5))
        # Consistent hashing: ~1/5 of keys move, never the ~4/5 a modulo
        # placement would reshuffle.
        assert moved < len(names) // 2


class TestForwarding:
    def test_register_and_serve(self, rng, matrix):
        router = ShardRouter(num_shards=1)
        w = FakeWorker(0).start()
        router.attach(0, w.router_side, 0)
        try:
            router.register_matrix("w0", matrix)
            b = _panel(rng)
            res = router.submit(SpmmRequest(matrix="w0", b=b)).result(timeout=10)
            expected = matrix.astype(np.float32) @ b.astype(np.float32)
            assert np.array_equal(res.c, expected)
            assert res.stats.route == "jigsaw"
            assert router.stats().requests == 1
        finally:
            router.close()
            w.close()

    def test_unknown_matrix_rejected(self):
        router = ShardRouter(num_shards=1)
        try:
            with pytest.raises(KeyError):
                router.submit(SpmmRequest(matrix="ghost", b=np.ones((4, 2))))
        finally:
            router.close()

    def test_shape_mismatch_rejected(self, rng, matrix):
        router = ShardRouter(num_shards=1)
        try:
            router.register_matrix("w0", matrix)
            with pytest.raises(ValueError):
                router.submit(
                    SpmmRequest(matrix="w0", b=np.ones((3, 2), np.float16))
                )
        finally:
            router.close()

    def test_conflicting_reregistration_rejected(self, rng, matrix):
        router = ShardRouter(num_shards=1)
        try:
            router.register_matrix("w0", matrix)
            router.register_matrix("w0", matrix)  # identical: idempotent
            with pytest.raises(ValueError):
                router.register_matrix("w0", matrix + np.float16(1))
        finally:
            router.close()

    def test_worker_error_frame_fails_the_future(self, rng, matrix):
        router = ShardRouter(num_shards=1)
        w = FakeWorker(0, fail_rids={1}).start()
        router.attach(0, w.router_side, 0)
        try:
            router.register_matrix("w0", matrix)
            future = router.submit(SpmmRequest(matrix="w0", b=_panel(rng)))
            with pytest.raises(ShardWorkerError):
                future.result(timeout=10)
            assert router.worker_errors == 1
        finally:
            router.close()
            w.close()

    def test_admission_throttles_before_forwarding(self, rng, matrix):
        admission = AdmissionController()
        admission.configure("bulk", rate_per_s=0.001, burst=1)
        router = ShardRouter(num_shards=1, admission=admission)
        w = FakeWorker(0).start()
        router.attach(0, w.router_side, 0)
        try:
            router.register_matrix("w0", matrix)
            ok = router.submit(
                SpmmRequest(matrix="w0", b=_panel(rng), tenant="bulk")
            )
            ok.result(timeout=10)
            with pytest.raises(ThrottledError):
                router.submit(
                    SpmmRequest(matrix="w0", b=_panel(rng), tenant="bulk")
                )
            assert router.stats().throttled == 1
        finally:
            router.close()
            w.close()


class TestRedelivery:
    def test_send_failure_redispatches_to_sibling(self, rng, matrix, monkeypatch):
        """The respawn-racing-a-forward race: the link looks alive but the
        send fails — that failure IS the crash signal, and the request
        must land on a live sibling, not be lost."""
        router = ShardRouter(num_shards=2)
        w0 = FakeWorker(0).start()
        w1 = FakeWorker(1).start()
        router.attach(0, w0.router_side, 0)
        router.attach(1, w1.router_side, 0)
        try:
            name = _name_on_shard(router, 0)
            router.register_matrix(name, matrix)

            # First spmm send dies mid-forward — the worker crashed
            # between routing and write.  (Router looks send_msg up on
            # the wire module at call time; the fake workers hold a
            # direct reference, so their replies are unaffected.)
            real_send = wire.send_msg
            tripped = []

            def flaky_send(sock, header, arrays=None):
                if header.get("type") == "spmm" and not tripped:
                    tripped.append(True)
                    raise OSError("worker died mid-send")
                return real_send(sock, header, arrays)

            monkeypatch.setattr(wire, "send_msg", flaky_send)

            b = _panel(rng)
            res = router.submit(SpmmRequest(matrix=name, b=b)).result(timeout=10)
            expected = matrix.astype(np.float32) @ b.astype(np.float32)
            assert np.array_equal(res.c, expected)
            assert router.redeliveries == 1
            assert router.send_failures == 1
            assert 0 not in router.live_shards()
        finally:
            router.close()
            w0.close()
            w1.close()

    def test_outbox_parks_until_respawn_attaches(self, rng, matrix):
        router = ShardRouter(num_shards=1)
        try:
            router.register_matrix("w0", matrix)
            b = _panel(rng)
            future = router.submit(SpmmRequest(matrix="w0", b=b))
            assert not future.done()  # parked: no link yet
            w = FakeWorker(0, incarnation=1).start()
            router.attach(0, w.router_side, 1)
            res = future.result(timeout=10)
            expected = matrix.astype(np.float32) @ b.astype(np.float32)
            assert np.array_equal(res.c, expected)
            # The respawn saw the registration before the parked frame.
            assert "w0" in w.registered
        finally:
            router.close()
            w.close()

    def test_exhausted_redeliveries_degrade_to_dense_isolation(
        self, rng, matrix, monkeypatch
    ):
        router = ShardRouter(num_shards=1, max_redeliveries=0)
        w = FakeWorker(0).start()
        router.attach(0, w.router_side, 0)
        try:
            router.register_matrix("w0", matrix)

            def doomed_send(sock, header, arrays=None):
                if header.get("type") == "spmm":
                    raise OSError("worker died mid-send")

            monkeypatch.setattr(wire, "send_msg", doomed_send)

            b = _panel(rng)
            res = router.submit(SpmmRequest(matrix="w0", b=b)).result(timeout=10)
            assert res.stats.route == "dense"
            assert "w0" in router.poisoned_matrices
            expected = cublas_hgemm(router._matrices["w0"], b).c
            assert np.array_equal(res.c, expected)

            # Follow-up traffic for the poison matrix never touches a
            # worker again — straight to router-local dense.
            res2 = router.submit(SpmmRequest(matrix="w0", b=b)).result(timeout=10)
            assert res2.stats.route == "dense"
            assert router.poison_served == 2
        finally:
            router.close()
            w.close()

    def test_reorder_runs_tracked_per_incarnation_max(self):
        router = ShardRouter(num_shards=2)
        try:
            router._note_reorder_runs(
                {"shard": 0, "incarnation": 0, "reorder_runs": 3}
            )
            router._note_reorder_runs(
                {"shard": 0, "incarnation": 0, "reorder_runs": 2}
            )
            router._note_reorder_runs(
                {"shard": 0, "incarnation": 1, "reorder_runs": 1}
            )
            assert router.worker_reorder_runs == {(0, 0): 3, (0, 1): 1}
            assert router.stats().reorder_runs == 4
        finally:
            router.close()
