"""Supervisor edge cases: drain-time death, double-crash, hang vs slow batch.

These spawn real worker processes, so matrices stay small and every
test uses one or two shards.  Fault sites fire deterministically
(probability 1.0 with ``after``/``count``), never on registration
frames — see ``repro.shard.worker``.
"""

import numpy as np
import pytest

from repro.baselines.cublas import cublas_hgemm
from repro.serve import SpmmRequest
from repro.shard import Supervisor
from tests.conftest import random_vector_sparse


@pytest.fixture()
def matrix(rng):
    return random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)


def _panel(rng, k=128, n=8):
    return rng.standard_normal((k, n)).astype(np.float16)


def _request(name, b):
    # v2 pins the block tile, keeping worker results deterministic.
    return SpmmRequest(matrix=name, b=b, version="v2")


class TestDrainDeath:
    def test_worker_dying_during_drain_is_counted_not_respawned(
        self, rng, matrix, tmp_path
    ):
        """The kill site fires on the *drain* frame (work frame #2 after
        one served request): stop() must complete anyway, count the
        crash, and never respawn into a closing tier."""
        sup = Supervisor(
            workers=1,
            cache_dir=tmp_path,
            fault_sites=[
                {"site": "shard.kill", "probability": 1.0, "after": 1, "count": 1}
            ],
        )
        with sup:
            sup.wait_ready()
            sup.router.register_matrix("w0", matrix)
            res = sup.router.submit(_request("w0", _panel(rng))).result(timeout=60)
            assert res.stats.route != "dense"
        # stop() ran inside the context manager: the drain frame was the
        # second work frame and killed the worker mid-drain.
        assert sup.crashes == 1
        assert sup.respawns == 0


class TestDoubleCrash:
    def test_double_crash_in_one_redelivery_window_poisons(
        self, rng, matrix, tmp_path
    ):
        """Every incarnation dies on its first work frame: home shard
        crashes, the redelivered request crashes the sibling too, and
        with max_redeliveries=1 the matrix degrades to router-local
        dense — zero lost, crashes contained."""
        b = _panel(rng)
        sup = Supervisor(
            workers=2,
            cache_dir=tmp_path,
            max_redeliveries=1,
            fault_sites=[
                {"site": "shard.kill", "probability": 1.0, "after": 0, "count": 1}
            ],
        )
        with sup:
            sup.wait_ready()
            sup.router.register_matrix("w0", matrix)
            res = sup.router.submit(_request("w0", b)).result(timeout=60)
            assert res.stats.route == "dense"
            assert "w0" in sup.router.poisoned_matrices
            expected = cublas_hgemm(
                np.ascontiguousarray(matrix, dtype=np.float16), b
            ).c
            assert np.array_equal(res.c, expected)
        assert sup.crashes >= 2  # home + sibling, at minimum


class TestLivenessDisambiguation:
    def test_slow_batch_keeps_beating_and_is_not_killed(
        self, rng, matrix, tmp_path
    ):
        """A batch far slower than the heartbeat timeout must not be
        mistaken for a hang: heartbeats run on their own thread."""
        sup = Supervisor(
            workers=1,
            cache_dir=tmp_path,
            slow_batch_s=1.0,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.4,
        )
        with sup:
            sup.wait_ready()
            sup.router.register_matrix("w0", matrix)
            res = sup.router.submit(_request("w0", _panel(rng))).result(timeout=60)
            assert res.stats.route != "dense"
            assert sup.crashes == 0
        assert sup.respawns == 0

    def test_hang_misses_heartbeats_and_is_killed_and_redelivered(
        self, rng, matrix, tmp_path
    ):
        """A genuine hang (work frame #2 of the home shard) stops the
        beats; the supervisor kills the worker and the in-flight request
        lands on the sibling — served, not lost, not poisoned."""
        sup = Supervisor(
            workers=2,
            cache_dir=tmp_path,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.4,
            # The sibling's drain frame is its own work frame #2 and hangs
            # too; keep the forced-kill wait at stop() short.
            drain_timeout_s=2.0,
            fault_sites=[
                {"site": "shard.hang", "probability": 1.0, "after": 1, "count": 1}
            ],
        )
        with sup:
            sup.wait_ready()
            sup.router.register_matrix("w0", matrix)
            # Work frame #1 on w0's home shard: served normally.
            first = sup.router.submit(_request("w0", _panel(rng))).result(timeout=60)
            assert first.stats.route != "dense"
            # Work frame #2 hangs the home shard; the sibling (work
            # frame #1 from its point of view) serves the redelivery.
            res = sup.router.submit(_request("w0", _panel(rng))).result(timeout=60)
            assert res.stats.route != "dense"
            assert sup.router.redeliveries >= 1
            assert "w0" not in sup.router.poisoned_matrices
            assert sup.crashes >= 1
            assert sup.respawns >= 1
