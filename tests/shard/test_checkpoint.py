"""Cost-model EWMA checkpoint tests: round-trip, atomicity, fail-soft load."""

import json

from repro.sched import CostModel
from repro.shard import (
    COST_CHECKPOINT_SCHEMA,
    checkpoint_path,
    load_cost_checkpoint,
    save_cost_checkpoint,
)


def _trained_model():
    model = CostModel()
    for _ in range(5):
        model.observe("w0", "jigsaw", us=10.0, cols=32)
        model.observe("w0", "dense", us=90.0, cols=32)
    model.observe("w1", "compiled", us=4.0, cols=16)
    return model


class TestRoundTrip:
    def test_estimates_and_counts_survive(self, tmp_path):
        model = _trained_model()
        path = checkpoint_path(tmp_path, 0)
        save_cost_checkpoint(model, path)

        restored = CostModel()
        n = load_cost_checkpoint(restored, path)
        assert n == 3
        assert restored.snapshot() == model.snapshot()
        # Counts matter: min_samples / exploration key on them.
        assert restored.samples("w0", "jigsaw") == 5
        assert restored.samples("w1", "compiled") == 1

    def test_path_is_per_shard(self, tmp_path):
        assert checkpoint_path(tmp_path, 0) != checkpoint_path(tmp_path, 1)

    def test_schema_is_stamped(self, tmp_path):
        path = checkpoint_path(tmp_path, 2)
        save_cost_checkpoint(_trained_model(), path)
        assert json.loads(path.read_text())["schema"] == COST_CHECKPOINT_SCHEMA


class TestFailSoftLoad:
    def test_missing_file_restores_nothing(self, tmp_path):
        model = CostModel()
        assert load_cost_checkpoint(model, checkpoint_path(tmp_path, 0)) == 0
        assert model.snapshot() == {}

    def test_corrupt_json_restores_nothing(self, tmp_path):
        path = checkpoint_path(tmp_path, 0)
        path.write_text("{not json")
        assert load_cost_checkpoint(CostModel(), path) == 0

    def test_wrong_schema_restores_nothing(self, tmp_path):
        path = checkpoint_path(tmp_path, 0)
        path.write_text(json.dumps({"schema": "other/v9", "estimates": {}}))
        assert load_cost_checkpoint(CostModel(), path) == 0

    def test_malformed_estimates_restore_nothing(self, tmp_path):
        path = checkpoint_path(tmp_path, 0)
        path.write_text(
            json.dumps(
                {
                    "schema": COST_CHECKPOINT_SCHEMA,
                    "alpha": 0.25,
                    "estimates": {"w0": {"jigsaw": "not-a-record"}},
                }
            )
        )
        assert load_cost_checkpoint(CostModel(), path) == 0

    def test_no_tmp_file_left_behind(self, tmp_path):
        save_cost_checkpoint(_trained_model(), checkpoint_path(tmp_path, 0))
        assert not list(tmp_path.glob("*.tmp"))
