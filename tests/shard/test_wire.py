"""Wire protocol tests: framing, dtype fidelity, truncation, poll."""

import socket
import threading

import numpy as np
import pytest

from repro.shard import WireClosedError, recv_msg, send_msg
from repro.shard.wire import _LEN, WireError, decode_frame, encode_frame


def _decode(frame: bytes):
    """Strip the frame-length prefix the way recv_msg does."""
    return decode_frame(frame[_LEN.size :])


class TestEncodeDecode:
    def test_header_only_roundtrip(self):
        header, arrays = _decode(encode_frame({"type": "drain"}, None))
        assert header == {"type": "drain"}
        assert arrays == {}

    def test_arrays_roundtrip_bit_exact(self):
        rng = np.random.default_rng(0)
        payload = {
            "b": rng.standard_normal((64, 32)).astype(np.float16),
            "c": rng.standard_normal((16, 8)).astype(np.float32),
        }
        _, arrays = _decode(encode_frame({"type": "spmm"}, payload))
        for k, v in payload.items():
            assert arrays[k].dtype == v.dtype
            assert np.array_equal(arrays[k], v)

    def test_numpy_scalars_in_header_are_json_safe(self):
        header = {"rid": np.int64(7), "us": np.float32(1.5)}
        decoded, _ = _decode(encode_frame(header, None))
        assert decoded == {"rid": 7, "us": 1.5}

    def test_unjsonable_header_rejected(self):
        with pytest.raises(TypeError):
            encode_frame({"bad": object()}, None)

    def test_truncated_header_rejected(self):
        frame = encode_frame({"type": "spmm", "rid": 12345}, None)
        with pytest.raises(WireError):
            decode_frame(frame[_LEN.size : _LEN.size + 6])

    def test_truncated_arrays_rejected(self):
        frame = encode_frame({"type": "spmm"}, {"b": np.ones((4, 4), np.float16)})
        with pytest.raises(WireError):
            decode_frame(frame[_LEN.size : -3])

    def test_non_object_header_rejected(self):
        import json
        import struct

        head = json.dumps([1, 2]).encode()
        with pytest.raises(WireError):
            decode_frame(struct.pack(">I", len(head)) + head)


class TestSocketFraming:
    def test_send_recv_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_msg(a, {"type": "spmm", "rid": 1}, {"b": np.ones((8, 4), np.float16)})
            header, arrays = recv_msg(b)
            assert header["rid"] == 1
            assert arrays["b"].shape == (8, 4)
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_sequence(self):
        a, b = socket.socketpair()
        try:
            for i in range(3):
                send_msg(a, {"rid": i})
            assert [recv_msg(b)[0]["rid"] for _ in range(3)] == [0, 1, 2]
        finally:
            a.close()
            b.close()

    def test_eof_raises_wire_closed(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(WireClosedError):
                recv_msg(b)
        finally:
            b.close()

    def test_poll_stops_wait_between_frames(self):
        a, b = socket.socketpair()
        b.settimeout(0.02)
        try:
            assert recv_msg(b, poll=lambda: True) is None
        finally:
            a.close()
            b.close()

    def test_poll_never_abandons_a_partial_frame(self):
        """A poll firing mid-frame must not surface None: the started
        frame is read to completion (drain waits for frame boundaries)."""
        a, b = socket.socketpair()
        b.settimeout(0.03)
        try:
            frame = encode_frame({"rid": 9}, {"b": np.ones((32, 16), np.float16)})
            a.sendall(frame[:10])  # frame started before recv is entered

            def trickle():
                threading.Event().wait(0.1)  # guarantee timeouts mid-frame
                a.sendall(frame[10:])

            t = threading.Thread(target=trickle)
            t.start()
            msg = recv_msg(b, poll=lambda: True)
            t.join()
            assert msg is not None
            header, arrays = msg
            assert header["rid"] == 9
            assert arrays["b"].shape == (32, 16)
        finally:
            a.close()
            b.close()
