"""Fleet metrics under chaos: aggregated counters track router ground truth.

The observability acceptance criterion as a tier-1 test: with workers
dying every K batches, the fleet-folded ``repro_requests_total`` stays
within the documented loss bound (one unshipped heartbeat delta per
crash, plus redelivered duplicates); with chaos off, the worker bye
frame flushes the final delta and the match is **exact**.
"""

import json

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    counter_by,
    set_metrics,
    validate_metrics_snapshot,
)
from repro.serve import PlanRegistry, SpmmRequest
from repro.shard import Supervisor
from tests.conftest import random_vector_sparse


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """FleetMetrics folds into the process-global registry by default —
    swap in a private one so earlier suites' series can't contaminate
    the exact-match assertions."""
    prev = set_metrics(MetricsRegistry())
    try:
        yield
    finally:
        set_metrics(prev)


def _warm_cache(tmp_path, matrices):
    registry = PlanRegistry(cache_dir=tmp_path, block_tiles=(64,))
    for name, a in matrices.items():
        registry.register(name, a)
    registry.warm()
    return registry


def _setup(rng, tmp_path, n_matrices=2, n_requests=8):
    matrices = {
        f"w{i}": random_vector_sparse(128, 256, v=8, sparsity=0.9, rng=rng)
        for i in range(n_matrices)
    }
    _warm_cache(tmp_path, matrices)
    requests = [
        SpmmRequest(
            matrix=f"w{i % n_matrices}",
            b=rng.standard_normal((256, 16)).astype(np.float16),
            version="v2",
        )
        for i in range(n_requests)
    ]
    return matrices, requests


def _fleet_requests(sup):
    """Fleet-folded route mix; ``require`` drops router-local series."""
    mix = counter_by(
        sup.router.fleet.registry,
        "repro_requests_total",
        "route",
        require=("shard",),
    )
    return mix, int(sum(mix.values()))


class TestCleanRunExactMatch:
    def test_bye_flush_makes_fleet_counters_exact(self, rng, tmp_path):
        matrices, requests = _setup(rng, tmp_path)
        status_path = tmp_path / "fleet-status.json"
        sup = Supervisor(workers=2, cache_dir=tmp_path, status_path=status_path)
        with sup:
            sup.wait_ready()
            for name, a in matrices.items():
                sup.router.register_matrix(name, a)
            for req in requests:
                assert sup.router.submit(req).result(timeout=120) is not None

        # No crash means no unshipped delta: graceful bye flushed the
        # final accruals and the fleet view equals router ground truth.
        assert sup.crashes == 0
        mix, total = _fleet_requests(sup)
        assert total == len(requests)
        served = {}
        for st in sup.router.request_stats():
            served[st.route] = served.get(st.route, 0) + 1
        assert {r: int(n) for r, n in mix.items()} == served
        assert sup.router.fleet.dropped_on_crash == 0
        assert sup.router.fleet.ingest_errors == 0

        # The supervisor kept the status file current through stop().
        doc = json.loads(status_path.read_text())
        assert doc["schema"] == "repro.fleet_status/v1"
        assert doc["fleet"]["requests_total"] == len(requests)
        assert doc["fleet"]["dropped_on_crash"] == 0
        assert len(doc["shards"]) == 2

    def test_fleet_snapshot_is_schema_valid(self, rng, tmp_path):
        matrices, requests = _setup(rng, tmp_path, n_requests=4)
        sup = Supervisor(workers=1, cache_dir=tmp_path)
        with sup:
            sup.wait_ready()
            for name, a in matrices.items():
                sup.router.register_matrix(name, a)
            for req in requests:
                sup.router.submit(req).result(timeout=120)
        snap = sup.router.fleet.registry.snapshot()
        assert validate_metrics_snapshot(snap) == []
        # Folded series carry the (shard, incarnation) provenance labels.
        rows = [
            m for m in snap["metrics"] if m["name"] == "repro_requests_total"
        ]
        assert rows
        for row in rows[0]["series"]:
            assert "shard" in row["labels"]
            assert "incarnation" in row["labels"]


class TestChaosLossBound:
    def test_kill_every_k_stays_within_one_heartbeat(self, rng, tmp_path):
        matrices, requests = _setup(rng, tmp_path, n_requests=12)
        status_path = tmp_path / "fleet-status.json"
        kill_every = 3
        sup = Supervisor(
            workers=2,
            cache_dir=tmp_path,
            status_path=status_path,
            fault_sites=[
                {
                    "site": "shard.kill",
                    "probability": 1.0,
                    "after": kill_every - 1,
                    "count": 1,
                }
            ],
        )
        results = []
        with sup:
            sup.wait_ready()
            for name, a in matrices.items():
                sup.router.register_matrix(name, a)
            for req in requests:
                results.append(sup.router.submit(req).result(timeout=120))

        assert all(r is not None for r in results)  # zero lost
        assert sup.crashes >= 1

        # Loss bound: each crash forfeits at most one heartbeat's delta
        # (<= kill_every requests of accrual), and each redelivery may
        # double-count a request served twice.
        mix, total = _fleet_requests(sup)
        ground_truth = len(sup.router.request_stats()) - sup.router.poison_served
        slack = sup.crashes * kill_every + sup.router.redeliveries
        assert abs(total - ground_truth) <= slack

        # Every crash was charged to the dropped-delta counter.
        assert sup.router.fleet.dropped_on_crash == sup.crashes
        assert sup.router.fleet.ingest_errors == 0

        doc = json.loads(status_path.read_text())
        assert doc["schema"] == "repro.fleet_status/v1"
        assert doc["crashes"] == sup.crashes
        assert doc["fleet"]["dropped_on_crash"] == sup.crashes
