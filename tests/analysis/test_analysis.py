"""Tests for the experiment harness (figures, tables, overhead, report)."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_TOTALS,
    avg_and_max_speedup,
    build_fig1,
    build_fig11,
    build_table3,
    measured_overhead,
    paper_overhead_model,
    render_fig1,
    render_fig11,
    render_overhead,
    render_table,
    run_workload,
)
from repro.core import JigsawMatrix, TileConfig
from repro.data import DlmcDataset, Workload
from tests.conftest import random_vector_sparse


@pytest.fixture(scope="module")
def tiny_dataset():
    return DlmcDataset(
        methods=("random",),
        sparsities=(0.7, 0.95),
        shapes=((64, 64), (64, 128), (128, 128)),
    )


class TestSpeedupHarness:
    def test_run_workload_times_all_systems(self):
        w = Workload("t", m=64, k=128, n=64, sparsity=0.9, v=4, seed=3)
        timing = run_workload(w)
        assert set(timing.durations_us) == {
            "cublas",
            "jigsaw",
            "clasp",
            "magicube",
            "sputnik",
            "sparta",
        }
        assert all(v > 0 for v in timing.durations_us.values())

    def test_normalization(self):
        w = Workload("t", m=64, k=128, n=64, sparsity=0.9, v=4, seed=3)
        timing = run_workload(w, systems=("cublas", "jigsaw"))
        norm = timing.normalized_to_cublas()
        assert norm["cublas"] == pytest.approx(1.0)
        assert norm["jigsaw"] == pytest.approx(
            timing.durations_us["cublas"] / timing.durations_us["jigsaw"]
        )

    def test_plan_cache_reused(self):
        cache: dict = {}
        w1 = Workload("t", m=64, k=128, n=32, sparsity=0.9, v=4, seed=3)
        w2 = Workload("t", m=64, k=128, n=64, sparsity=0.9, v=4, seed=3)
        run_workload(w1, systems=("jigsaw",), plan_cache=cache)
        assert len(cache) == 1
        run_workload(w2, systems=("jigsaw",), plan_cache=cache)
        assert len(cache) == 1  # same matrix, different N -> same plan

    def test_avg_and_max(self):
        w = Workload("t", m=64, k=128, n=64, sparsity=0.95, v=8, seed=3)
        timings = [run_workload(w, systems=("cublas", "jigsaw"))]
        avg, mx = avg_and_max_speedup(timings, "cublas")
        assert avg == mx  # single sample

    def test_avg_rejects_empty(self):
        with pytest.raises(ValueError):
            avg_and_max_speedup([], "cublas")

    def test_unknown_system_rejected(self):
        w = Workload("t", m=64, k=128, n=64, sparsity=0.9, v=4, seed=3)
        with pytest.raises(ValueError):
            run_workload(w, systems=("tpu",))


class TestFig1:
    def test_conformance_rises_with_sparsity(self, tiny_dataset):
        points = build_fig1(
            sparsities=(0.7, 0.95), vector_widths=(4,), dataset=tiny_dataset
        )
        by_sp = {p.sparsity: p.proportion for p in points}
        # Paper Figure 1: conformance is low and grows with sparsity.
        assert by_sp[0.7] <= by_sp[0.95]
        assert by_sp[0.7] < 0.5

    def test_render(self, tiny_dataset):
        points = build_fig1(
            sparsities=(0.7, 0.95), vector_widths=(2, 4), dataset=tiny_dataset
        )
        text = render_fig1(points)
        assert "v=2" in text and "95%" in text


class TestFig11:
    def test_success_rises_with_sparsity(self, tiny_dataset):
        points = build_fig11(
            sparsities=(0.7, 0.95),
            vector_widths=(8,),
            block_tiles=(16,),
            dataset=tiny_dataset,
        )
        by_sp = {p.sparsity: p.success_rate for p in points}
        assert by_sp[0.95] >= by_sp[0.7]

    def test_render(self, tiny_dataset):
        points = build_fig11(
            sparsities=(0.95,),
            vector_widths=(8,),
            block_tiles=(16, 64),
            dataset=tiny_dataset,
        )
        assert "BT=16" in render_fig11(points)


class TestTable3:
    def test_jigsaw_wins_everywhere(self):
        # Realistic problem size: at toy sizes launch floors distort the
        # comparison (the paper's evaluation uses 512..4096 shapes).
        cells = build_table3(
            sparsities=(0.9,), v_values=(32, 64), shape=(512, 512), n=512
        )
        for c in cells:
            # At this reduced test size the VENOM margin can shrink to
            # par; the bench asserts strict wins at the paper's scale.
            assert c.vs_venom > 0.95
            assert c.vs_cusparselt > 1.0

    def test_venom_gap_narrows_with_v(self):
        cells = build_table3(
            sparsities=(0.9,), v_values=(32, 128), shape=(512, 512), n=256
        )
        by_v = {c.v: c.vs_venom for c in cells}
        assert by_v[128] <= by_v[32]


class TestOverhead:
    def test_paper_model_totals(self):
        # Section 4.6: 56.25%, 50%, 46.87% of the dense footprint.
        for bt, expected in PAPER_TOTALS.items():
            got = paper_overhead_model(bt).total_ratio
            assert got == pytest.approx(expected, abs=0.001), bt

    def test_paper_model_rejects_bad_tiles(self):
        with pytest.raises(ValueError):
            paper_overhead_model(0)

    def test_corrected_model_fixes_value_bytes(self):
        plain = paper_overhead_model(16)
        corrected = paper_overhead_model(16, corrected=True)
        # The only difference is booking fp16 values at 2 bytes (MK bytes
        # = 0.5 of dense) instead of the paper's 1 byte.
        assert corrected.values_ratio == pytest.approx(0.5)
        assert corrected.total_ratio - plain.total_ratio == pytest.approx(0.25)

    def test_measured_matches_corrected_model_without_zero_columns(self, rng):
        # A 50%-dense matrix with no zero columns: measured storage should
        # match the *corrected* paper model (the published model
        # under-books the fp16 values; see paper_overhead_model docs).
        from repro.formats import venom_prune

        a = venom_prune(rng.standard_normal((128, 128)).astype(np.float16), v=16)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=16))
        measured = measured_overhead(jm).total_ratio
        model = paper_overhead_model(16, corrected=True).total_ratio
        assert measured == pytest.approx(model, abs=0.05)

    def test_measured_benefits_from_zero_columns(self, rng):
        a = random_vector_sparse(64, 256, v=8, sparsity=0.95, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=16))
        assert measured_overhead(jm).total_ratio < paper_overhead_model(16).total_ratio

    def test_render(self):
        text = render_overhead({bt: paper_overhead_model(bt) for bt in (16, 32, 64)})
        assert "56.25%" in text


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1
