"""Tests for the functional-verification campaign."""

from repro.analysis import render_verification, run_verification
from repro.analysis.verification import (
    VerificationRecord,
    VerificationReport,
    default_workloads,
)
from repro.data.workloads import Workload


class TestReportObject:
    def test_all_passed(self):
        report = VerificationReport(
            records=[VerificationRecord("w", "s", 0.01, True)]
        )
        assert report.all_passed
        report.records.append(VerificationRecord("w", "s2", 9.0, False))
        assert not report.all_passed
        assert len(report.failures()) == 1

    def test_worst_by_system(self):
        report = VerificationReport(
            records=[
                VerificationRecord("a", "s", 0.1, True),
                VerificationRecord("b", "s", 0.3, True),
            ]
        )
        assert report.worst_by_system() == {"s": 0.3}


class TestCampaign:
    def test_default_grid_passes(self):
        report = run_verification()
        assert report.all_passed, render_verification(report)
        systems = {r.system for r in report.records}
        assert {"jigsaw", "cublas", "sputnik", "hybrid"} <= systems

    def test_single_workload(self):
        w = Workload("tiny", m=32, k=64, n=32, sparsity=0.9, v=4, seed=9)
        report = run_verification([w])
        assert report.all_passed
        assert all(r.workload == "tiny" for r in report.records)

    def test_strict_tolerance_flags_fp16_rounding(self):
        w = Workload("tiny", m=64, k=256, n=32, sparsity=0.7, v=4, seed=9)
        report = run_verification([w], atol=0.0)
        # Zero tolerance must flag at least the fp16-rounded paths.
        assert not report.all_passed

    def test_default_workloads_cover_regimes(self):
        ws = default_workloads()
        assert any(w.sparsity <= 0.6 for w in ws)
        assert any(w.sparsity >= 0.98 for w in ws)
        assert any(w.m % 32 for w in ws)  # ragged shape present

    def test_render(self):
        report = run_verification(
            [Workload("tiny", m=32, k=64, n=32, sparsity=0.9, v=4, seed=9)]
        )
        text = render_verification(report)
        assert "max |err|" in text
        assert "ALL SYSTEMS AGREE" in text
