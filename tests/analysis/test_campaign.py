"""Tests for the whole-collection reorder campaign."""

import pytest

from repro.analysis import run_campaign
from repro.data import DlmcDataset


@pytest.fixture(scope="module")
def campaign():
    ds = DlmcDataset(
        methods=("random",),
        sparsities=(0.8, 0.95),
        shapes=((64, 64), (64, 128), (128, 256)),
    )
    return run_campaign(ds, vector_widths=(2, 8), block_tiles=(16, 64))


class TestCampaign:
    def test_record_count(self, campaign):
        # 2 sparsities x 3 shapes x 2 v x 2 block tiles.
        assert len(campaign.records) == 2 * 3 * 2 * 2

    def test_success_rate_bounds(self, campaign):
        rate = campaign.success_rate()
        assert 0.0 <= rate <= 1.0

    def test_filters(self, campaign):
        hi = campaign.success_rate(sparsity=0.95)
        lo = campaign.success_rate(sparsity=0.8)
        assert hi >= lo  # success rises with sparsity

    def test_filter_without_match_raises(self, campaign):
        with pytest.raises(ValueError):
            campaign.success_rate(sparsity=0.123)

    def test_mean_skip_ordering(self, campaign):
        # Wider vectors skip more at fixed BLOCK_TILE.
        assert campaign.mean_skip(8, 16) >= campaign.mean_skip(2, 16)

    def test_storage_ratio_below_dense(self, campaign):
        assert campaign.mean_storage_ratio() < 1.0

    def test_failure_k_ceiling(self, campaign):
        ceiling = campaign.failure_k_ceiling()
        if campaign.failures():
            assert ceiling in {64, 128, 256}
        else:
            assert ceiling is None

    def test_max_matrices_limits_work(self):
        ds = DlmcDataset(
            methods=("random",), sparsities=(0.9,), shapes=((64, 64), (64, 128))
        )
        result = run_campaign(ds, vector_widths=(4,), block_tiles=(16,), max_matrices=1)
        assert len(result.records) == 1

    def test_render(self, campaign):
        from repro.analysis import render_campaign

        text = render_campaign(campaign)
        assert "success BT=16" in text
        assert "storage ratio" in text
