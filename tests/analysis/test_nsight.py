"""Tests for the Nsight-style profile-diff reports."""

import numpy as np
import pytest

from repro.analysis import (
    MetricDelta,
    profile_deltas,
    render_profile_diff,
    speedup_narrative,
)
from repro.core import JigsawPlan
from tests.conftest import random_vector_sparse


@pytest.fixture(scope="module")
def v0_v1_profiles():
    rng = np.random.default_rng(8)
    a = random_vector_sparse(256, 512, v=8, sparsity=0.95, rng=rng)
    b = rng.standard_normal((512, 512)).astype(np.float16)
    plan = JigsawPlan(a)
    p0 = plan.run(b, version="v0", want_output=False).profile
    p1 = plan.run(b, version="v1", want_output=False).profile
    p3 = plan.run(b, version="v3", want_output=False).profile
    return p0, p1, p3


class TestMetricDelta:
    def test_relative(self):
        d = MetricDelta("x", 10.0, 5.0)
        assert d.relative == pytest.approx(-0.5)
        assert d.describe() == "-50.00%"

    def test_zero_before(self):
        assert MetricDelta("x", 0.0, 0.0).relative == 0.0
        assert MetricDelta("x", 0.0, 5.0).describe() == "new"


class TestProfileDeltas:
    def test_conflict_delta_captured(self, v0_v1_profiles):
        p0, p1, _ = v0_v1_profiles
        deltas = {d.name: d for d in profile_deltas(p0, p1)}
        assert deltas["smem_bank_conflicts"].relative < -0.9

    def test_smem_instruction_delta_v1_to_v3(self, v0_v1_profiles):
        _, p1, p3 = v0_v1_profiles
        deltas = {d.name: d for d in profile_deltas(p1, p3)}
        assert deltas["smem_instructions"].relative < -0.02

    def test_render_contains_kernel_names(self, v0_v1_profiles):
        p0, p1, _ = v0_v1_profiles
        text = render_profile_diff(p0, p1, ("v0", "v1"))
        assert "jigsaw_v0" in text and "jigsaw_v1" in text
        assert "smem_bank_conflicts" in text

    def test_narrative_mentions_conflicts(self, v0_v1_profiles):
        p0, p1, _ = v0_v1_profiles
        text = speedup_narrative(p0, p1)
        assert "bank conflicts reduced" in text
