"""Dashboard rendering + renderers on empty/zero-activity stats."""

from repro.analysis import (
    render_dashboard,
    render_preprocessing,
    render_serving,
    serving_rows,
)
from repro.obs import ManualClock, MetricsRegistry, Tracer, set_metrics
from repro.serve.stats import ServeStats


class TestRenderDashboard:
    def test_empty_registry_renders_placeholders(self):
        out = render_dashboard(metrics=MetricsRegistry())
        assert "(no metrics)" in out
        assert "(no histograms)" in out
        assert "== spans ==" not in out  # no span source given

    def test_counters_gauges_histograms_render(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total").inc(3, route="jigsaw")
        reg.gauge("repro_pending_requests").set(2)
        h = reg.histogram("repro_queue_wait_seconds")
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        out = render_dashboard(metrics=reg)
        assert "repro_requests_total" in out
        assert "route=jigsaw" in out
        assert "repro_pending_requests" in out
        # The acceptance-criteria quantiles: queue wait p50/p95/p99.
        assert "repro_queue_wait_seconds" in out
        assert "p50" in out and "p95" in out and "p99" in out

    def test_span_section_rolls_up_by_name(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        for _ in range(3):
            with tracer.span("serve.request"):
                clock.advance(1.0)
        out = render_dashboard(metrics=MetricsRegistry(), spans=tracer)
        assert "== spans ==" in out
        line = next(
            ln for ln in out.splitlines() if "serve.request" in ln
        )
        assert " 3 " in line  # count column
        assert "(no spans)" not in out

    def test_empty_span_source_renders_placeholder(self):
        out = render_dashboard(metrics=MetricsRegistry(), spans=[])
        assert "(no spans)" in out

    def test_default_reads_global_registry(self):
        mine = MetricsRegistry()
        mine.counter("repro_smoke_total").inc()
        prev = set_metrics(mine)
        try:
            assert "repro_smoke_total" in render_dashboard()
        finally:
            set_metrics(prev)


class TestEmptyStatsRenderers:
    def test_render_serving_zero_activity(self):
        out = render_serving(ServeStats())
        assert "requests" in out
        assert "0.00" in out  # avg batch size renders, no ZeroDivisionError
        rows = dict(
            (r[0], r[1]) for r in serving_rows(ServeStats()) if len(r) == 2
        )
        assert rows["requests"] == "0"
        assert rows["kernel time: jigsaw"] == "0.00 us"
        assert rows["request registry hit/miss"] == "0/0"

    def test_render_serving_collected_from_nothing(self):
        stats = ServeStats.collect([], [])
        out = render_serving(stats)
        assert "avg queue wait" in out
        assert stats.avg_queue_wait_s == 0.0

    def test_render_preprocessing_zero_runs(self):
        from repro.core.engine import PlanStats

        out = render_preprocessing(PlanStats())
        assert "preprocessing" in out
