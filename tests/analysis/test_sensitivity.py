"""Tests for the device-sensitivity study."""

import pytest

from repro.analysis import AXES, perturbed_device, run_sensitivity
from repro.gpu import A100


class TestPerturbation:
    def test_scales_float_field(self):
        dev = perturbed_device("dram_bandwidth", 2.0)
        assert dev.dram_bandwidth_gbps == pytest.approx(2 * A100.dram_bandwidth_gbps)

    def test_scales_int_field(self):
        dev = perturbed_device("sm_count", 0.5)
        assert dev.num_sms == 54

    def test_never_drops_to_zero(self):
        dev = perturbed_device("sm_count", 0.001)
        assert dev.num_sms >= 1

    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            perturbed_device("rgb_lighting", 2.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            perturbed_device("sm_count", 0.0)

    def test_base_unmodified(self):
        perturbed_device("dram_bandwidth", 3.0)
        assert A100.dram_bandwidth_gbps == 1555.0


class TestSweep:
    def test_small_sweep_structure(self):
        points = run_sensitivity(
            m=128, k=128, n=128, scales=(1.0,), axes=("sm_count",)
        )
        assert len(points) == 1
        p = points[0]
        assert p.axis == "sm_count" and p.scale == 1.0
        assert p.jigsaw_us > 0 and p.cublas_us > 0
        assert p.speedup == pytest.approx(p.cublas_us / p.jigsaw_us)

    def test_all_axes_registered(self):
        assert set(AXES) == {
            "dram_bandwidth",
            "tensor_core_throughput",
            "sm_count",
            "l2_bandwidth",
        }
