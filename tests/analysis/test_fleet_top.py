"""``render_fleet_top``: the pure renderer behind ``repro top``."""

from repro.analysis import render_fleet_top

SAMPLE_STATUS = {
    "schema": "repro.fleet_status/v1",
    "workers": 2,
    "crashes": 1,
    "respawns": 1,
    "shards": [
        {
            "shard": 0,
            "incarnation": 2,
            "alive": True,
            "attached": True,
            "beat_age_s": 0.12,
            "requests_total": 7,
            "route_mix": {"jigsaw": 5, "dense": 2},
            "kernel_seconds": {"p50": 0.0004, "p99": 0.0009},
            "breaker_transitions": 0,
        },
        {
            "shard": 1,
            "incarnation": 1,
            "alive": False,
            "attached": False,
            "beat_age_s": 3.5,
            "requests_total": 3,
            "route_mix": {},
            "kernel_seconds": None,
            "breaker_transitions": 2,
        },
    ],
    "router": {
        "inflight": 1,
        "redeliveries": 2,
        "poison_served": 0,
        "poisoned": [],
        "worker_errors": 0,
        "send_failures": 0,
        "requests_total": 10,
        "request_seconds": {"p50": 0.002, "p99": 0.008},
    },
    "fleet": {
        "requests_total": 10,
        "route_mix": {"dense": 2, "jigsaw": 8},
        "kernel_seconds": {"p50": 0.0004, "p99": 0.0009},
        "snapshots_ingested": 12,
        "ingest_errors": 0,
        "dropped_on_crash": 1,
    },
    "alerts": {
        "policies": ["serving"],
        "fired_total": 2,
        "active": [
            {
                "policy": "serving",
                "rule": "fast_burn",
                "burn_rate": 20.0,
                "threshold": 14.4,
                "value": 1.0,
                "window_s": 5.0,
                "samples": 6,
                "resolved_at": None,
            }
        ],
        "recent": [
            {
                "policy": "serving",
                "rule": "p99",
                "value": 0.012,
                "threshold": 0.010,
                "resolved_at": 42.0,
            }
        ],
    },
}


class TestRenderFleetTop:
    def test_sample_renders_every_block(self):
        out = render_fleet_top(SAMPLE_STATUS)
        assert "2 workers, 1 crashes, 1 respawns" in out
        # Shard table: live shard with stable route order, dead shard flagged.
        assert "live" in out and "DEAD" in out
        assert "jigsaw:5 dense:2" in out
        # Sub-ms latencies render in microseconds.
        assert "400/900us" in out
        assert "2.0/8.0ms" in out
        # Router / fleet / delta summary lines.
        assert "redeliveries 2" in out
        assert "requests 10" in out
        assert "dropped-on-crash 1" in out

    def test_alert_feed(self):
        out = render_fleet_top(SAMPLE_STATUS)
        assert "alerts: 1 active / 2 fired" in out
        assert "[ACTIVE] serving/fast_burn burn=20.0x >= 14.4x" in out
        assert "(miss rate 100.0%)" in out
        assert "[resolved] serving/p99 p99=12.0ms > 10.0ms" in out

    def test_empty_document_is_tolerated(self):
        out = render_fleet_top({})
        assert "(no shards attached yet)" in out
        assert "alerts: no SLO policies attached" in out

    def test_unknown_routes_sort_after_known(self):
        doc = {
            "shards": [
                {
                    "shard": 0,
                    "route_mix": {"zeta": 1, "dense": 3, "jigsaw": 2},
                }
            ]
        }
        out = render_fleet_top(doc)
        assert "jigsaw:2 dense:3 zeta:1" in out
