"""Tests for the CSV/JSON result exporters."""

import json

import pytest

from repro.analysis import result_rows, to_csv, to_json
from repro.analysis.figures import Fig1Point, Fig10Series, Fig11Point, Fig12Result
from repro.analysis.sensitivity import SensitivityPoint
from repro.analysis.tables import Table2Row, Table3Cell


@pytest.fixture()
def fig1_points():
    return [Fig1Point(0.9, 4, 0.05), Fig1Point(0.98, 4, 0.2)]


class TestRowFlattening:
    def test_fig1(self, fig1_points):
        header, rows = result_rows(fig1_points)
        assert header == ["sparsity", "v", "proportion"]
        assert rows == [[0.9, 4, 0.05], [0.98, 4, 0.2]]

    def test_fig10(self):
        fig = Fig10Series(0.95, 8, (1024, 1024), (256, 512))
        fig.series = {"jigsaw": [2.0, 2.5], "cublas": [1.0, 1.0]}
        header, rows = result_rows([fig])
        assert len(rows) == 4
        assert ["system" in header]
        assert [0.95, 8, 1024, 1024, 512, "jigsaw", 2.5] in rows

    def test_fig11(self):
        header, rows = result_rows([Fig11Point(0.8, 2, 64, 0.2)])
        assert rows == [[0.8, 2, 64, 0.2]]

    def test_fig12(self):
        result = Fig12Result(
            avg_speedup={"v0": 0.7, "v1": 1.5},
            probe_metrics={
                "v0": {"duration_us": 3.6, "bank_conflicts": 100.0},
                "v1": {"duration_us": 2.0, "bank_conflicts": 1.0},
            },
        )
        header, rows = result_rows(result)
        assert header[0] == "version"
        assert len(rows) == 2

    def test_table2(self):
        row = Table2Row(0.95, 8, {"cublas": (1.99, 2.99)})
        header, rows = result_rows([row])
        assert rows == [[0.95, 8, "cublas", 1.99, 2.99]]

    def test_table3(self):
        header, rows = result_rows([Table3Cell(0.9, 64, 1.2, 2.2)])
        assert rows == [[0.9, 64, 1.2, 2.2]]

    def test_sensitivity(self):
        header, rows = result_rows([SensitivityPoint("sm_count", 2.0, 1.0, 3.0)])
        assert rows[0][-1] == pytest.approx(3.0)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            result_rows([object()])
        with pytest.raises(TypeError):
            result_rows("nope")


class TestWriters:
    def test_csv_text(self, fig1_points):
        text = to_csv(fig1_points)
        lines = text.strip().splitlines()
        assert lines[0] == "sparsity,v,proportion"
        assert len(lines) == 3

    def test_csv_file(self, fig1_points, tmp_path):
        path = tmp_path / "fig1.csv"
        to_csv(fig1_points, path)
        assert path.read_text().startswith("sparsity")

    def test_json_records(self, fig1_points, tmp_path):
        path = tmp_path / "fig1.json"
        text = to_json(fig1_points, path)
        records = json.loads(text)
        assert records[0] == {"sparsity": 0.9, "v": 4, "proportion": 0.05}
        assert json.loads(path.read_text()) == records
