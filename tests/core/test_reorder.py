"""Tests for the multi-granularity sparsity reorder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileConfig, reorder_matrix, reorder_slab, validate_reorder
from tests.conftest import random_vector_sparse


class TestSlabReorder:
    def test_zero_columns_dropped(self, rng):
        slab = np.zeros((16, 64), dtype=np.float16)
        slab[:, 5] = 1
        slab[:, 10] = 1
        r = reorder_slab(slab, 0)
        used = [c for c in r.col_ids.tolist() if c >= 0]
        assert sorted(used) == [5, 10]
        assert r.n_groups == 1  # 2 columns fit one group

    def test_all_zero_slab(self):
        r = reorder_slab(np.zeros((16, 64), dtype=np.float16), 0)
        assert r.n_groups == 0
        assert len(r.col_ids) == 0

    def test_rejects_bad_height(self):
        with pytest.raises(ValueError):
            reorder_slab(np.zeros((10, 64), dtype=np.float16), 0)

    def test_every_tile_sptc_conformant(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        res = reorder_matrix(a, TileConfig(block_tile=64))
        validate_reorder(a, res)  # asserts 2:4 per strip x group

    def test_columns_are_permutation(self, rng):
        a = random_vector_sparse(64, 128, v=2, sparsity=0.8, rng=rng)
        res = reorder_matrix(a, TileConfig(block_tile=32))
        for slab in res.slabs:
            used = [c for c in slab.col_ids.tolist() if c >= 0]
            assert len(used) == len(set(used))

    def test_strips_have_independent_permutations(self, rng):
        # Different 16-row strips may choose different within-group orders
        # over the same columns (paper: "same data of B but with a
        # different column order").
        a = random_vector_sparse(64, 64, v=2, sparsity=0.7, rng=rng)
        res = reorder_matrix(a, TileConfig(block_tile=64))
        slab = res.slabs[0]
        assert slab.tile_perms.shape[0] == 4  # 4 strips

    def test_eviction_counted(self):
        # Build a slab where one 16-column group cannot be covered: nine
        # dense columns force eviction.
        slab = np.zeros((16, 16), dtype=np.float16)
        slab[:, :9] = 1
        r = reorder_slab(slab, 0)
        assert r.evictions >= 1
        used = [c for c in r.col_ids.tolist() if c >= 0]
        assert sorted(used) == list(range(9))

    def test_eviction_appends_to_end(self):
        slab = np.zeros((16, 16), dtype=np.float16)
        slab[:, :9] = 1
        r = reorder_slab(slab, 0)
        # The evicted column lands in a second group.
        assert r.n_groups == 2


class TestReorderResult:
    def test_success_criterion(self, rng):
        # High sparsity, many zero columns: K shrinks, success.
        a = random_vector_sparse(64, 256, v=8, sparsity=0.95, rng=rng)
        res = reorder_matrix(a, TileConfig(block_tile=16))
        assert res.success
        assert res.skipped_column_fraction > 0.3

    def test_failure_when_k_grows(self):
        # A dense-ish matrix with no zero columns and heavy conflicts.
        rng = np.random.default_rng(5)
        a = (rng.random((16, 32)) < 0.6).astype(np.float16)
        res = reorder_matrix(a, TileConfig(block_tile=16))
        # K=32 -> 2 groups allowed; dense tiles force evictions into more.
        if not res.success:
            assert res.total_groups > 2
        # Either way, the reorder must stay valid.
        validate_reorder(a, res)

    def test_larger_block_tile_fewer_zero_columns(self, rng):
        # Paper Section 4.3: larger BLOCK_TILE makes all-zero columns rarer.
        a = random_vector_sparse(128, 256, v=4, sparsity=0.9, rng=rng)
        frac16 = reorder_matrix(a, TileConfig(block_tile=16)).skipped_column_fraction
        frac64 = reorder_matrix(a, TileConfig(block_tile=64)).skipped_column_fraction
        assert frac16 >= frac64

    def test_wider_vectors_more_zero_columns(self, rng):
        # Paper Section 4.2: larger v increases all-zero column likelihood.
        a2 = random_vector_sparse(128, 256, v=2, sparsity=0.9, rng=rng)
        a8 = random_vector_sparse(128, 256, v=8, sparsity=0.9, rng=rng)
        f2 = reorder_matrix(a2, TileConfig(block_tile=64)).skipped_column_fraction
        f8 = reorder_matrix(a8, TileConfig(block_tile=64)).skipped_column_fraction
        assert f8 > f2

    def test_partial_trailing_slab(self, rng):
        a = random_vector_sparse(48, 64, v=4, sparsity=0.9, rng=rng)  # 48 = 16*3
        res = reorder_matrix(a, TileConfig(block_tile=32))
        assert len(res.slabs) == 2
        validate_reorder(a, res)

    @given(
        st.sampled_from([2, 4, 8]),
        st.sampled_from([0.7, 0.85, 0.95]),
        st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_reorder_validity_property(self, v, sparsity, seed):
        rng = np.random.default_rng(seed)
        a = random_vector_sparse(32, 64, v=v, sparsity=sparsity, rng=rng)
        res = reorder_matrix(a, TileConfig(block_tile=32))
        validate_reorder(a, res)


class TestSplitModeFallback:
    def test_split_engages_within_eviction_budget(self):
        # Regression: force_split used to be evaluated only at group
        # formation, so a column exhausting its retry budget *inside* the
        # retry loop kept being re-queued and the group burned one
        # eviction per remaining column before ever splitting.  With 16
        # dense columns and a budget of 1, the old code performed 8
        # evictions before any split; the fixed loop re-evaluates after
        # each eviction and splits immediately.
        slab = np.ones((16, 16), dtype=np.float16)
        r = reorder_slab(slab, 0, max_evictions_per_column=1)
        assert r.evictions <= 1
        assert r.split_groups >= 1
        res = reorder_matrix(slab, TileConfig(block_tile=16))
        validate_reorder(slab, res)

    def test_split_restores_victim_slot_order(self):
        # The column that trips the budget goes back to its original slot
        # before the split, so split groups keep the work-list order.
        slab = np.ones((16, 16), dtype=np.float16)
        r = reorder_slab(slab, 0, max_evictions_per_column=1)
        used = [c for c in r.col_ids.tolist() if c >= 0]
        assert sorted(used) == list(range(16))
        # The split group (emitted first) stores two real columns per quad.
        assert r.split_groups >= 1
        ids = r.group_col_ids(0).reshape(4, 4)
        assert np.all((ids >= 0).sum(axis=1) <= 2)

    def test_forced_split_still_valid(self):
        # An adversarial matrix that defeats normal covers repeatedly:
        # every column dense in interleaved halves.
        rng = np.random.default_rng(8)
        a = np.zeros((16, 32), dtype=np.float16)
        a[:, :] = (rng.random((16, 32)) < 0.7).astype(np.float16)
        res = reorder_matrix(a, TileConfig(block_tile=16))
        validate_reorder(a, res)
        # Dense tiles either evict or split, but never corrupt.
        assert res.total_groups >= 2
