"""Dynamic sparsity: incremental format/plan repair is bit-identical to
a full rebuild, touches only dirty slabs, and version-qualifies every
cache artifact."""

import io

import numpy as np
import pytest

from repro.core import (
    JigsawPlan,
    TileConfig,
    compile_plan,
    load_jigsaw,
    plan_cache_key,
    repair_compiled,
    roundtrip_equal,
    save_jigsaw,
)
from tests.conftest import random_vector_sparse


def _update(a, rng, rows):
    """An in-place-style update confined to the given rows; returns
    (rows, cols, values, a_new)."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = rng.integers(0, a.shape[1], size=rows.shape[0])
    values = (rng.standard_normal(rows.shape[0]) * 0.5).astype(np.float16)
    a_new = a.copy()
    a_new[rows, cols] = values
    return rows, cols, values, a_new


class TestPlanRepair:
    @pytest.fixture()
    def a(self, rng):
        return random_vector_sparse(256, 128, v=4, sparsity=0.9, rng=rng)

    def test_repaired_format_bit_identical_to_rebuild(self, a, rng):
        plan = JigsawPlan(a)
        plan.format_for(JigsawPlan.FIXED_BLOCK_TILE)
        rows, cols, values, a_new = _update(a, rng, [70, 75, 100])
        repaired = plan.updated(rows, cols, values)
        rjm = repaired.format_for(JigsawPlan.FIXED_BLOCK_TILE)
        # A rebuild at the same content version must be byte-equal.
        rebuilt = JigsawPlan(
            a_new, content_version=repaired.content_version
        ).format_for(JigsawPlan.FIXED_BLOCK_TILE)
        assert roundtrip_equal(rjm, rebuilt)
        np.testing.assert_array_equal(rjm.to_dense(), a_new)

    def test_repair_touches_only_dirty_slabs(self, rng):
        # 2048 rows / BLOCK_TILE 64 = 32 slabs; one dirty slab is ~3% of
        # tiles and must cost <25% of a rebuild's reorder work.
        a = random_vector_sparse(2048, 128, v=4, sparsity=0.9, rng=rng)
        plan = JigsawPlan(a)
        plan.format_for(JigsawPlan.FIXED_BLOCK_TILE)
        rows, cols, values, _ = _update(a, rng, [3, 17, 60])
        repaired = plan.updated(rows, cols, values)
        run = repaired.stats.runs[-1]
        assert run.plan_cache == "repair"
        assert run.slabs == 32
        assert run.repaired_slabs == 1
        assert run.repaired_slabs / run.slabs < 0.25
        # Repairs never count as reorder runs (the zero-reorder cache
        # guarantee stays meaningful).
        assert repaired.stats.repairs == 1
        assert repaired.stats.reorder_runs == 0

    def test_repaired_plan_runs_bit_identical_to_fresh(self, a, rng):
        plan = JigsawPlan(a)
        plan.format_for(JigsawPlan.FIXED_BLOCK_TILE)
        rows, cols, values, a_new = _update(a, rng, [5, 130])
        repaired = plan.updated(rows, cols, values)
        fresh = JigsawPlan(a_new)
        b = rng.standard_normal((128, 16)).astype(np.float16)
        for version in ("v3", "v4"):
            np.testing.assert_array_equal(
                repaired.run(b, version=version).c,
                fresh.run(b, version=version).c,
            )

    def test_updated_never_mutates_the_old_plan(self, a, rng):
        plan = JigsawPlan(a)
        jm = plan.format_for(JigsawPlan.FIXED_BLOCK_TILE)
        b = rng.standard_normal((128, 8)).astype(np.float16)
        before = plan.run(b, version="v3").c
        rows, cols, values, _ = _update(a, rng, [0, 64, 128])
        plan.updated(rows, cols, values)
        # In-flight consumers of the old version stay bit-identical.
        assert plan.content_version == 0
        np.testing.assert_array_equal(jm.to_dense(), a)
        np.testing.assert_array_equal(plan.run(b, version="v3").c, before)

    def test_repaired_rejects_bad_arguments(self, a):
        jm = JigsawPlan(a).format_for(JigsawPlan.FIXED_BLOCK_TILE)
        with pytest.raises(ValueError, match="shape"):
            jm.repaired(np.zeros((8, 8), np.float16), {0})
        with pytest.raises(ValueError, match="out of range"):
            jm.repaired(a.copy(), {99})


class TestMatrixApplyUpdate:
    def test_apply_update_in_place(self, rng):
        a = random_vector_sparse(256, 128, v=4, sparsity=0.9, rng=rng)
        jm = JigsawPlan(a).format_for(JigsawPlan.FIXED_BLOCK_TILE)
        assert jm.content_version == 0
        rows = np.array([2, 66, 70])
        cols = np.array([1, 2, 3])
        values = np.array([0.5, -0.25, 1.0], np.float16)
        dirty = jm.apply_update(rows, cols, values)
        assert dirty == [0, 1]
        assert jm.content_version == 1
        expect = a.copy()
        expect[rows, cols] = values
        np.testing.assert_array_equal(jm.to_dense(), expect)


class TestCompiledRepair:
    def test_repair_compiled_equals_full_recompile(self, rng):
        a = random_vector_sparse(256, 128, v=4, sparsity=0.9, rng=rng)
        jm = JigsawPlan(a).format_for(JigsawPlan.FIXED_BLOCK_TILE)
        old = compile_plan(jm)
        rows = np.array([70, 80])
        cols = np.array([9, 40])
        values = np.array([0.75, -0.5], np.float16)
        a_new = a.copy()
        a_new[rows, cols] = values
        rjm = jm.repaired(a_new, {1})
        patched = repair_compiled(old, rjm, {1})
        assert patched.equals(compile_plan(rjm))
        b = rng.standard_normal((128, 8)).astype(np.float16)
        from repro.core import run_compiled_kernel

        np.testing.assert_array_equal(
            run_compiled_kernel(patched, b).c,
            run_compiled_kernel(compile_plan(rjm), b).c,
        )

    def test_updated_repairs_attached_compiled_plan(self, rng):
        a = random_vector_sparse(256, 128, v=4, sparsity=0.9, rng=rng)
        jm = JigsawPlan(a).format_for(JigsawPlan.FIXED_BLOCK_TILE)
        jm._compiled = compile_plan(jm)
        a_new = a.copy()
        a_new[5, 7] = np.float16(2.0)
        rjm = jm.repaired(a_new, {0})
        assert rjm._compiled is not None
        assert rjm._compiled.equals(compile_plan(rjm))


class TestVersionedArtifacts:
    def test_plan_cache_key_is_version_qualified(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        config = TileConfig(block_tile=64)
        k0 = plan_cache_key(a, config, True, content_version=0)
        k1 = plan_cache_key(a, config, True, content_version=1)
        assert k0 != k1
        assert k0 == plan_cache_key(a, config, True, content_version=0)

    def test_serialization_roundtrips_repaired_matrix(self, rng):
        a = random_vector_sparse(256, 128, v=4, sparsity=0.9, rng=rng)
        jm = JigsawPlan(a).format_for(JigsawPlan.FIXED_BLOCK_TILE)
        a_new = a.copy()
        a_new[70, 3] = np.float16(1.5)
        rjm = jm.repaired(a_new, {1})
        buf = io.BytesIO()
        save_jigsaw(rjm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        assert back.content_version == 1
        assert roundtrip_equal(rjm, back)
        np.testing.assert_array_equal(back.to_dense(), a_new)

    def test_both_versions_artifacts_coexist_on_disk(self, rng, tmp_path):
        a = random_vector_sparse(256, 128, v=4, sparsity=0.9, rng=rng)
        plan = JigsawPlan(a, cache_dir=tmp_path)
        plan.format_for(JigsawPlan.FIXED_BLOCK_TILE)
        (old_path,) = plan.artifact_paths()
        assert old_path.exists()
        rows = np.array([70])
        cols = np.array([3])
        repaired = plan.updated(rows, cols, np.array([1.5], np.float16))
        (new_path,) = repaired.artifact_paths()
        # The repaired artifact persists under a new version-qualified
        # key; the old version's file survives until garbage-collected.
        assert new_path != old_path
        assert new_path.exists() and old_path.exists()
        # A cold plan at the new version cache-hits the repaired artifact.
        cold = JigsawPlan(
            repaired._a,
            cache_dir=tmp_path,
            content_version=repaired.content_version,
        )
        cold.format_for(JigsawPlan.FIXED_BLOCK_TILE)
        assert cold.stats.plan_cache_hits == 1
        assert cold.stats.reorder_runs == 0
