"""Tests for the preprocessing engine: parallel reorder, cover cache,
persistent plan cache, and the observability counters."""

import numpy as np
import pytest

from repro.core import (
    JigsawPlan,
    PreprocessStats,
    TileConfig,
    clear_cover_cache,
    cover_cache_stats,
    find_cover,
    plan_cache_key,
    preprocess,
    reorder_matrix,
    resolve_workers,
    roundtrip_equal,
    validate_reorder,
)
from repro.core.reorder import PARALLEL_MIN_ELEMS
from tests.conftest import random_vector_sparse


def assert_same_reorder(r1, r2):
    assert len(r1.slabs) == len(r2.slabs)
    for s1, s2 in zip(r1.slabs, r2.slabs):
        assert s1.slab_index == s2.slab_index
        assert np.array_equal(s1.col_ids, s2.col_ids)
        assert np.array_equal(s1.tile_perms, s2.tile_perms)
        assert (s1.evictions, s1.split_groups) == (s2.evictions, s2.split_groups)


class TestParallelReorder:
    def test_parallel_bit_identical_to_serial(self, rng):
        a = random_vector_sparse(128, 256, v=4, sparsity=0.85, rng=rng)
        serial = reorder_matrix(a, TileConfig(block_tile=32), workers=1)
        parallel = reorder_matrix(a, TileConfig(block_tile=32), workers=2)
        assert parallel.workers_used == 2
        assert_same_reorder(serial, parallel)
        validate_reorder(a, parallel)

    def test_parallel_partial_trailing_slab(self, rng):
        a = random_vector_sparse(80, 128, v=2, sparsity=0.8, rng=rng)  # 80 = 2.5 slabs
        serial = reorder_matrix(a, TileConfig(block_tile=32), workers=1)
        parallel = reorder_matrix(a, TileConfig(block_tile=32), workers=3)
        assert_same_reorder(serial, parallel)
        validate_reorder(a, parallel)

    def test_auto_policy_stays_serial_below_threshold(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        assert a.size < PARALLEL_MIN_ELEMS
        r = reorder_matrix(a, TileConfig(block_tile=32))
        assert r.workers_used == 1

    def test_resolve_workers_policy(self):
        # single slab: nothing to parallelize
        assert resolve_workers(8, 1 << 30, 1) == 1
        # explicit width, capped by slab count
        assert resolve_workers(8, 100, 4) == 4
        assert resolve_workers(2, 100, 4) == 2
        # auto: serial below the size threshold, parallel above
        assert resolve_workers(None, PARALLEL_MIN_ELEMS - 1, 64) == 1
        assert resolve_workers(None, PARALLEL_MIN_ELEMS, 64) >= 1
        # workers=1 forces serial
        assert resolve_workers(1, 1 << 30, 64) == 1

    def test_cover_cache_counters_aggregated(self, rng):
        a = random_vector_sparse(128, 256, v=8, sparsity=0.9, rng=rng)
        clear_cover_cache()
        r = reorder_matrix(a, TileConfig(block_tile=64), workers=1)
        stats = cover_cache_stats()
        assert r.cover_cache_hits + r.cover_cache_misses == stats.lookups
        assert r.cover_cache_misses == stats.misses


class TestCoverCache:
    def test_hit_on_identical_pattern(self, rng):
        clear_cover_cache()
        mask = np.zeros((16, 16), dtype=bool)
        mask[:, :8] = True  # quad 0 is over-dense -> not identity-2:4
        before = cover_cache_stats()
        first = find_cover(mask)
        second = find_cover(mask)
        after = cover_cache_stats()
        assert after.misses - before.misses == 1
        assert after.hits - before.hits == 1
        assert first is not None
        assert first == second

    def test_hit_on_permuted_pattern(self, rng):
        # Column permutations of a tile share one cache entry.
        clear_cover_cache()
        mask = np.zeros((16, 16), dtype=bool)
        mask[:, :8] = True
        find_cover(mask)
        # Explicit permutation leaving quad 0 with three dense columns, so
        # the identity fast path cannot short-circuit past the cache.
        perm_cols = [0, 1, 2, 8, 3, 4, 5, 9, 6, 7, 10, 11, 12, 13, 14, 15]
        permuted = mask[:, perm_cols]
        before = cover_cache_stats()
        sol = find_cover(permuted)
        after = cover_cache_stats()
        assert after.hits - before.hits == 1
        assert sol is not None
        # The mapped-back solution must be a valid cover of the permuted tile.
        order = np.array(sol.order)
        tile = permuted[:, order]
        assert np.all(tile.reshape(16, 4, 4).sum(axis=2) <= 2)

    def test_cache_disabled_matches_cached(self, rng):
        for seed in range(6):
            r = np.random.default_rng(seed)
            mask = r.random((16, 16)) < 0.4
            clear_cover_cache()
            cached = find_cover(mask, use_cache=True)
            uncached = find_cover(mask, use_cache=False)
            assert cached == uncached

    def test_identity_fast_path_bypasses_cache(self):
        clear_cover_cache()
        mask = np.zeros((16, 16), dtype=bool)
        mask[:, 0] = True  # trivially 2:4 in place
        sol = find_cover(mask)
        assert sol.order == tuple(range(16))
        assert cover_cache_stats().lookups == 0

    def test_clear_resets_counters(self):
        mask = np.zeros((16, 16), dtype=bool)
        mask[:, :8] = True
        find_cover(mask)
        clear_cover_cache()
        stats = cover_cache_stats()
        assert stats.hits == 0 and stats.misses == 0


class TestPreprocess:
    def test_preprocess_matches_build(self, rng):
        from repro.core import JigsawMatrix

        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        jm, stats = preprocess(a, TileConfig(block_tile=32))
        ref = JigsawMatrix.build(a, TileConfig(block_tile=32))
        assert roundtrip_equal(jm, ref)
        assert stats.reorder_seconds > 0
        assert stats.compress_seconds > 0
        assert stats.slabs == 2
        assert stats.plan_cache == "off"
        assert 0.0 <= stats.cover_cache_hit_rate <= 1.0

    def test_preprocess_stats_defaults(self):
        stats = PreprocessStats()
        assert stats.total_seconds == 0.0
        assert stats.cover_cache_hit_rate == 0.0


class TestPlanCache:
    def test_second_plan_does_zero_reorder_work(self, rng, tmp_path):
        a = random_vector_sparse(64, 256, v=8, sparsity=0.9, rng=rng)
        p1 = JigsawPlan(a, block_tiles=(64,), cache_dir=tmp_path)
        jm1 = p1.format_for(64)
        assert p1.stats.reorder_runs == 1
        assert p1.stats.plan_cache_misses == 1

        p2 = JigsawPlan(a, block_tiles=(64,), cache_dir=tmp_path)
        jm2 = p2.format_for(64)
        assert p2.stats.reorder_runs == 0  # zero reorder work
        assert p2.stats.plan_cache_hits == 1
        assert p2.stats.runs[-1].plan_cache == "hit"
        assert roundtrip_equal(jm1, jm2)
        np.testing.assert_array_equal(jm1.to_dense(), jm2.to_dense())

    def test_cache_distinguishes_settings(self, rng, tmp_path):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        p1 = JigsawPlan(a, block_tiles=(64,), cache_dir=tmp_path)
        p1.format_for(64)
        # Different avoid_bank_conflicts must not alias the cached artifact.
        p2 = JigsawPlan(
            a, block_tiles=(64,), avoid_bank_conflicts=False, cache_dir=tmp_path
        )
        p2.format_for(64)
        assert p2.stats.plan_cache_hits == 0
        assert p2.stats.reorder_runs == 1
        # Different BLOCK_TILE is a separate entry too.
        p3 = JigsawPlan(a, block_tiles=(32,), cache_dir=tmp_path)
        p3.format_for(32)
        assert p3.stats.plan_cache_hits == 0

    def test_cache_distinguishes_matrices(self, rng, tmp_path):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        b = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        assert not np.array_equal(a, b)
        JigsawPlan(a, block_tiles=(64,), cache_dir=tmp_path).format_for(64)
        p2 = JigsawPlan(b, block_tiles=(64,), cache_dir=tmp_path)
        p2.format_for(64)
        assert p2.stats.plan_cache_hits == 0

    def test_corrupt_artifact_rebuilds(self, rng, tmp_path):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        p1 = JigsawPlan(a, block_tiles=(64,), cache_dir=tmp_path)
        p1.format_for(64)
        for f in tmp_path.glob("*.npz"):
            f.write_bytes(b"not an npz")
        p2 = JigsawPlan(a, block_tiles=(64,), cache_dir=tmp_path)
        jm = p2.format_for(64)
        assert p2.stats.reorder_runs == 1  # fell back to building
        np.testing.assert_array_equal(jm.to_dense(), a)

    def test_no_cache_dir_means_off(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        p = JigsawPlan(a, block_tiles=(64,))
        p.format_for(64)
        assert p.stats.plan_cache_hits == 0
        assert p.stats.plan_cache_misses == 0
        assert p.stats.runs[-1].plan_cache == "off"

    def test_plan_cache_key_sensitivity(self, rng):
        """The key must react to every TileConfig field (a pre-v3 key
        omitted ``mma_tile``, aliasing non-default-MMA_TILE plans)."""
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        cfg = TileConfig(block_tile=64)
        k1 = plan_cache_key(a, cfg, True)
        assert k1 == plan_cache_key(a.copy(), cfg, True)
        assert k1 != plan_cache_key(a, cfg, False)
        assert k1 != plan_cache_key(a, TileConfig(block_tile=32), True)
        assert k1 != plan_cache_key(a, TileConfig(block_tile=64, block_tile_n=128), True)
        assert k1 != plan_cache_key(a, TileConfig(block_tile=64, mma_tile=8), True)
        a2 = a.copy()
        a2[0, 0] += np.float16(1.0)
        assert k1 != plan_cache_key(a2, cfg, True)

    def test_plan_cache_key_versioned(self, rng, monkeypatch):
        """Bumping PLAN_CACHE_KEY_VERSION invalidates every old key."""
        from repro.core import engine

        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        cfg = TileConfig(block_tile=64)
        k_now = plan_cache_key(a, cfg, True)
        monkeypatch.setattr(engine, "PLAN_CACHE_KEY_VERSION", 2)
        assert plan_cache_key(a, cfg, True) != k_now


class TestValidateSweep:
    """Randomized validate_reorder sweep over the (sparsity x v x shape)
    grid, exercising split-mode groups, partial trailing slabs, and the
    parallel-vs-serial bit-identity guarantee of the engine."""

    @pytest.mark.parametrize("v", [2, 4, 8])
    @pytest.mark.parametrize("sparsity", [0.6, 0.9])
    @pytest.mark.parametrize(
        "shape,block_tile",
        [
            ((48, 64), 32),   # partial trailing slab
            ((64, 128), 64),
            ((112, 96), 32),  # partial trailing slab, non-square
        ],
    )
    def test_sweep_valid_and_parallel_identical(self, v, sparsity, shape, block_tile):
        rng = np.random.default_rng(hash((v, sparsity, shape)) % (2**32))
        m, k = shape
        a = random_vector_sparse(m, k, v=v, sparsity=sparsity, rng=rng)
        cfg = TileConfig(block_tile=block_tile)
        serial = reorder_matrix(a, cfg, workers=1)
        validate_reorder(a, serial)
        parallel = reorder_matrix(a, cfg, workers=2)
        assert_same_reorder(serial, parallel)

    def test_sweep_hits_split_mode(self):
        # Dense interleaved halves defeat normal covers; with a tight
        # retry budget the slab must fall back to split groups and stay
        # valid — in serial and parallel alike.
        rng = np.random.default_rng(11)
        a = (rng.random((32, 64)) < 0.75).astype(np.float16)
        from repro.core import reorder_slab

        r = reorder_slab(a[:16], 0, max_evictions_per_column=1)
        assert r.split_groups >= 1
        serial = reorder_matrix(a, TileConfig(block_tile=16), workers=1)
        parallel = reorder_matrix(a, TileConfig(block_tile=16), workers=2)
        assert_same_reorder(serial, parallel)
        validate_reorder(a, serial)
