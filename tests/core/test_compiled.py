"""Compiled whole-plan route: bit-exactness, serialization, accounting.

The compiled route's contract is *bit-identity* with the BLOCK_TILE=64
tile-by-tile route (``compute_output``): same expanded operands, same
gathered B rows, same per-strip group addition order, same scatter.  The
property sweep below checks ``np.array_equal`` — not allclose — across
shapes, sparsities, widths, and dtypes, including the degenerate cases
(zero-width B, all-dense, all-zero, partial strips).
"""

import io

import numpy as np
import pytest

from repro.core import (
    JigsawPlan,
    compile_plan,
    compiled_output,
    load_jigsaw,
    save_jigsaw,
)
from repro.core.compiled import compiled_profile
from repro.core.kernels import compute_output
from repro.core.serialization import FORMAT_VERSION, _content_digest
from tests.conftest import random_vector_sparse


def _plan(rng, m, k, v=4, sparsity=0.9):
    a = random_vector_sparse(m, k, v=v, sparsity=sparsity, rng=rng)
    return JigsawPlan(a)


class TestBitExactness:
    @pytest.mark.parametrize(
        "m,k,v,sparsity",
        [
            (64, 128, 4, 0.9),
            (64, 128, 4, 0.0),  # all-dense: every column survives
            (100, 200, 4, 0.7),  # partial strips, partial slab
            (16, 32, 2, 0.5),  # single strip
            (8, 64, 4, 0.8),  # partial first strip (m < MMA_TILE)
            (256, 512, 4, 0.95),
        ],
    )
    @pytest.mark.parametrize("n", [0, 1, 8, 33])
    def test_matches_tile_route_exactly(self, rng, m, k, v, sparsity, n):
        plan = _plan(rng, m, k, v=v, sparsity=sparsity)
        jm = plan.format_for(plan.FIXED_BLOCK_TILE)
        b = rng.standard_normal((k, n)).astype(np.float16)
        ref = compute_output(jm, b)
        got = plan.run_compiled(b).c
        assert got.dtype == ref.dtype
        assert np.array_equal(ref, got)

    def test_all_zero_matrix(self, rng):
        plan = JigsawPlan(np.zeros((64, 128), dtype=np.float16))
        b = rng.standard_normal((128, 16)).astype(np.float16)
        got = plan.run_compiled(b).c
        assert np.array_equal(got, np.zeros((64, 16), dtype=np.float32))

    @pytest.mark.parametrize("dtype", [np.float16, np.float32])
    def test_b_dtypes(self, rng, dtype):
        # Both routes promote B to float32 the same way, so parity holds
        # for panels that are not representable in fp16 too.
        plan = _plan(rng, 64, 128)
        jm = plan.format_for(plan.FIXED_BLOCK_TILE)
        b = (rng.standard_normal((128, 16)) * 3.0).astype(dtype)
        assert np.array_equal(compute_output(jm, b), plan.run_compiled(b).c)

    def test_compiled_output_validates_b_rows(self, rng):
        plan = _plan(rng, 64, 128)
        cp = plan.compiled()
        with pytest.raises(ValueError, match="rows"):
            compiled_output(cp, np.zeros((64, 4), dtype=np.float16))

    def test_tiles_sorted_by_group_then_strip(self, rng):
        cp = _plan(rng, 256, 512, sparsity=0.7).compiled()
        # g_starts delimits contiguous, ascending group ranges; strip
        # indices are unique within each range (what makes the
        # fancy-indexed += a true accumulate).
        assert cp.g_starts[0] == 0 and cp.g_starts[-1] == cp.n_tiles
        for g in range(cp.n_group_ordinals):
            sl = cp.strip_idx[cp.g_starts[g] : cp.g_starts[g + 1]]
            assert len(np.unique(sl)) == len(sl)


class TestSerialization:
    def test_v5_roundtrip_preserves_compiled_arrays(self, rng):
        plan = _plan(rng, 100, 200, sparsity=0.7)
        jm = plan.format_for(plan.FIXED_BLOCK_TILE)
        cp = jm.compiled_plan()
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        loaded = load_jigsaw(buf)
        # Loaded artifacts serve the compiled route with zero recompile.
        assert loaded._compiled is not None
        assert cp.equals(loaded._compiled)
        # And a from-scratch recompile of the loaded format agrees with
        # the persisted arrays (the lowering is deterministic).
        assert compile_plan(loaded).equals(loaded._compiled)

    def test_pre_v5_artifact_lazily_recompiles(self, rng):
        plan = _plan(rng, 64, 128)
        jm = plan.format_for(plan.FIXED_BLOCK_TILE)
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        arrays = {k: v for k, v in np.load(buf).items()}
        # Rewrite as a v4 artifact: drop the compiled payload, restamp
        # the header, recompute the checksum.
        arrays = {k: v for k, v in arrays.items() if not k.startswith("c_")}
        header = arrays["header"].copy()
        header[0] = 4
        arrays["header"] = header
        del arrays["checksum"]
        arrays["checksum"] = np.frombuffer(_content_digest(arrays), dtype=np.uint8)
        old = io.BytesIO()
        np.savez_compressed(old, **arrays)
        old.seek(0)
        loaded = load_jigsaw(old)
        assert loaded._compiled is None  # nothing persisted to restore
        cp = loaded.compiled_plan()  # first compiled-route use compiles
        assert loaded._compiled is cp
        assert compile_plan(jm).equals(cp)

    def test_compiled_payload_persisted_since_v5(self):
        from repro.core.serialization import COMPILED_MIN_VERSION

        assert COMPILED_MIN_VERSION == 5
        assert FORMAT_VERSION >= COMPILED_MIN_VERSION

    def test_loaded_plan_serves_bit_identical(self, rng, tmp_path):
        plan = _plan(rng, 64, 128, sparsity=0.7)
        jm = plan.format_for(plan.FIXED_BLOCK_TILE)
        path = tmp_path / "a.npz"
        save_jigsaw(jm, path)
        loaded = load_jigsaw(path)
        b = rng.standard_normal((128, 24)).astype(np.float16)
        from repro.core import run_compiled_kernel

        got = run_compiled_kernel(loaded.compiled_plan(), b).c
        assert np.array_equal(compute_output(jm, b), got)


class TestAccounting:
    def test_compiled_sim_beats_tile_route(self, rng):
        # The whole point: the cost model must be able to *discover* the
        # compiled route, so its simulated duration must come in under
        # the autotuned tile route's on serving-shaped matrices.
        for sparsity in (0.8, 0.7):
            plan = _plan(rng, 64, 128, sparsity=sparsity)
            b = rng.standard_normal((128, 16)).astype(np.float16)
            tile_us = plan.run(b, want_output=False).profile.duration_us
            compiled_us = plan.run_compiled(b, want_output=False).profile.duration_us
            assert compiled_us < tile_us

    def test_profile_cached_per_width(self, rng):
        plan = _plan(rng, 64, 128)
        cp = plan.compiled()
        p1 = compiled_profile(cp, 16)
        p2 = compiled_profile(cp, 16)
        assert p1 is p2
        p3 = compiled_profile(cp, 32)
        assert p3 is not p1
