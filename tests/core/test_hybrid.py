"""Tests for the hybrid-granularity kernel (paper Section 4.7 extension)."""

import numpy as np
import pytest

from repro.core import TileConfig
from repro.core.kernels import build_hybrid_plan, hybrid_spmm
from tests.conftest import random_vector_sparse


class TestRouting:
    def test_dense_columns_routed_to_dense_tc(self, rng):
        a = np.zeros((32, 64), dtype=np.float16)
        a[:, 5] = 1.0  # fully dense column
        a[0:2, 10] = 1.0  # low-density column (2/32 = 0.0625)
        a[0:8, 20] = 1.0  # mid-density column (0.25)
        plan = build_hybrid_plan(a, TileConfig(block_tile=32))
        route = plan.routes[0]
        assert 5 in route.dense_cols
        assert 10 in route.sparse_cols
        assert 20 in route.sptc_cols

    def test_route_fractions_sum_to_one(self, rng):
        a = random_vector_sparse(128, 256, v=4, sparsity=0.6, rng=rng)
        plan = build_hybrid_plan(a, TileConfig(block_tile=32))
        d, s, c = plan.route_fractions()
        assert d + s + c == pytest.approx(1.0)

    def test_thresholds_validated(self, rng):
        a = np.zeros((32, 32), np.float16)
        with pytest.raises(ValueError):
            build_hybrid_plan(a, dense_threshold=0.2, sparse_threshold=0.5)

    def test_high_sparsity_routes_everything_to_sptc(self, rng):
        a = random_vector_sparse(128, 256, v=8, sparsity=0.95, rng=rng)
        plan = build_hybrid_plan(a, TileConfig(block_tile=16))
        d, s, c = plan.route_fractions()
        assert s > 0.95

    def test_low_sparsity_engages_dense_route(self, rng):
        a = random_vector_sparse(128, 256, v=4, sparsity=0.45, rng=rng)
        plan = build_hybrid_plan(a, TileConfig(block_tile=32))
        d, _, _ = plan.route_fractions()
        assert d > 0.1


class TestFunctional:
    @pytest.mark.parametrize("sparsity", [0.4, 0.6, 0.8, 0.95])
    def test_matches_reference(self, rng, sparsity):
        a = random_vector_sparse(128, 256, v=4, sparsity=sparsity, rng=rng)
        b = rng.standard_normal((256, 128)).astype(np.float16)
        res = hybrid_spmm(a, b, TileConfig(block_tile=32))
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    def test_cuda_core_route_correct(self, rng):
        # Force the CUDA-core route with isolated scalar nonzeros in a
        # tall slab (density 1/64 < 0.0625).
        a = np.zeros((64, 128), dtype=np.float16)
        cols = rng.choice(128, size=20, replace=False)
        rows = rng.choice(64, size=20)
        a[rows, cols] = 1.5
        b = rng.standard_normal((128, 64)).astype(np.float16)
        plan = build_hybrid_plan(a, TileConfig(block_tile=64))
        _, _, c_frac = plan.route_fractions()
        assert c_frac > 0.9
        res = hybrid_spmm(a, b, TileConfig(block_tile=64))
        np.testing.assert_allclose(
            res.c, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-3, atol=1e-2
        )

    def test_duplicate_sparse_rows_accumulate(self):
        # Two scalar nonzeros on the same row, different columns.
        a = np.zeros((64, 128), dtype=np.float16)
        a[3, 10] = 1.0
        a[3, 90] = 2.0
        b = np.ones((128, 8), dtype=np.float16)
        res = hybrid_spmm(a, b, TileConfig(block_tile=64))
        assert res.c[3, 0] == pytest.approx(3.0)

    def test_want_output_false(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.6, rng=rng)
        b = rng.standard_normal((128, 64)).astype(np.float16)
        res = hybrid_spmm(a, b, want_output=False)
        assert res.c is None and res.profile.duration_us > 0


class TestExtensionBehaviour:
    """The Section 4.7 motivation: hybrid extends the win region downward."""

    def test_hybrid_beats_pure_sptc_at_low_sparsity(self, rng):
        a = random_vector_sparse(512, 512, v=4, sparsity=0.55, rng=rng)
        b = rng.standard_normal((512, 512)).astype(np.float16)
        from repro.core import JigsawPlan

        pure = JigsawPlan(a, block_tiles=(32,)).run(b, want_output=False)
        hyb = hybrid_spmm(a, b, TileConfig(block_tile=32), want_output=False)
        assert hyb.profile.duration_us < pure.profile.duration_us

    def test_hybrid_matches_sptc_at_high_sparsity(self, rng):
        a = random_vector_sparse(512, 512, v=8, sparsity=0.95, rng=rng)
        b = rng.standard_normal((512, 512)).astype(np.float16)
        from repro.core import JigsawPlan

        pure = JigsawPlan(a, block_tiles=(64,)).run(b, version="v3", want_output=False)
        hyb = hybrid_spmm(a, b, TileConfig(block_tile=64), want_output=False)
        # Same route -> comparable durations (within 20%).
        ratio = hyb.profile.duration_us / pure.profile.duration_us
        assert 0.8 < ratio < 1.25
