"""Regression tests for the JigsawPlan API: construction validation,
concurrent artifact stores, and the one-shot wrapper's engine kwargs."""

import threading

import numpy as np
import pytest

from repro.core import JigsawPlan, jigsaw_spmm
from repro.core.serialization import load_jigsaw
from tests.conftest import random_vector_sparse


class TestConstructionValidation:
    def test_empty_block_tiles_rejected(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        with pytest.raises(ValueError, match="at least one BLOCK_TILE"):
            JigsawPlan(a, block_tiles=())

    def test_unsupported_block_tile_rejected(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        with pytest.raises(ValueError, match="unsupported"):
            JigsawPlan(a, block_tiles=(48,))


class TestConcurrentStore:
    def test_concurrent_writers_to_one_artifact(self, rng, tmp_path):
        """Threads persisting the same artifact path concurrently must
        not clobber each other's tmp file (the tmp name used to be
        pid-only, so same-process threads collided)."""
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        plan = JigsawPlan(a, block_tiles=(64,))
        jm = plan.format_for(64)
        path = tmp_path / "artifact.npz"

        errors: list[BaseException] = []

        def store_many():
            try:
                for _ in range(5):
                    plan._store(jm, path)
            except BaseException as exc:  # noqa: BLE001 - collect for assert
                errors.append(exc)

        threads = [threading.Thread(target=store_many) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"concurrent _store raised: {errors!r}"
        # No stray tmp files, and the artifact is whole.
        assert list(tmp_path.glob("*.tmp-*")) == []
        back = load_jigsaw(path)
        np.testing.assert_array_equal(back.to_dense(), jm.to_dense())

    def test_concurrent_plans_share_cache_dir(self, rng, tmp_path):
        """Distinct plans over one matrix racing on the same cache entry
        all end up with the correct format."""
        a = random_vector_sparse(64, 256, v=8, sparsity=0.9, rng=rng)
        plans = [JigsawPlan(a, block_tiles=(64,), cache_dir=tmp_path) for _ in range(6)]
        outputs: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []

        def build(i):
            try:
                outputs[i] = plans[i].format_for(64).to_dense()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=build, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for out in outputs.values():
            np.testing.assert_array_equal(out, a)


class TestOneShotPassthrough:
    def test_jigsaw_spmm_forwards_cache_dir_and_workers(self, rng, tmp_path):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        b = rng.standard_normal((128, 32)).astype(np.float16)
        res = jigsaw_spmm(a, b, block_tiles=(64,), workers=1, cache_dir=tmp_path)
        np.testing.assert_allclose(
            res.c,
            a.astype(np.float32) @ b.astype(np.float32),
            rtol=1e-3,
            atol=1e-2,
        )
        # The one-shot path persisted its artifact ...
        assert list(tmp_path.glob("jigsaw-*.npz"))
        # ... which a later plan loads with zero reorder work.
        plan = JigsawPlan(a, block_tiles=(64,), cache_dir=tmp_path)
        plan.format_for(64)
        assert plan.stats.reorder_runs == 0
        assert plan.stats.plan_cache_hits == 1
