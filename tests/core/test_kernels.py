"""Tests for the Jigsaw kernel versions (functional + profiled behaviour)."""

import numpy as np
import pytest

from repro.core import ALL_VERSIONS, JigsawMatrix, JigsawPlan, TileConfig, jigsaw_spmm
from repro.core.kernels import V0, V1, V2, V3, compute_output, compute_output_exact, run_jigsaw_kernel
from tests.conftest import random_vector_sparse


@pytest.fixture()
def small_problem(rng):
    a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
    b = rng.standard_normal((128, 64)).astype(np.float16)
    ref = a.astype(np.float32) @ b.astype(np.float32)
    return a, b, ref


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("version", ["v0", "v1", "v2", "v3", "v4"])
    def test_matches_reference(self, small_problem, version):
        a, b, ref = small_problem
        res = JigsawPlan(a).run(b, version=version)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    @pytest.mark.parametrize("block_tile", [16, 32, 64])
    def test_block_tiles(self, rng, block_tile):
        a = random_vector_sparse(64, 96, v=2, sparsity=0.85, rng=rng)
        b = rng.standard_normal((96, 64)).astype(np.float16)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=block_tile))
        res = run_jigsaw_kernel(jm, b, V3)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    def test_exact_path_agrees_with_fast_path(self, small_problem):
        a, b, _ = small_problem
        jm = JigsawMatrix.build(a)
        fast = compute_output(jm, b)
        exact = compute_output_exact(jm, b)
        np.testing.assert_allclose(fast, exact, rtol=1e-4, atol=1e-4)

    def test_non_multiple_shapes(self, rng):
        # M not a multiple of BLOCK_TILE, N not a multiple of 64.
        a = random_vector_sparse(48, 80, v=4, sparsity=0.8, rng=rng)
        b = rng.standard_normal((80, 40)).astype(np.float16)
        res = jigsaw_spmm(a, b, version="v3", block_tiles=(32,))
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(res.c, ref, rtol=1e-3, atol=1e-2)

    def test_rejects_mismatched_b(self, small_problem):
        a, _, _ = small_problem
        plan = JigsawPlan(a)
        with pytest.raises(ValueError):
            plan.run(np.zeros((13, 8), np.float16))

    def test_all_zero_matrix(self, rng):
        a = np.zeros((32, 64), dtype=np.float16)
        b = rng.standard_normal((64, 32)).astype(np.float16)
        res = jigsaw_spmm(a, b, block_tiles=(32,))
        np.testing.assert_array_equal(res.c, np.zeros((32, 32), np.float32))

    def test_want_output_false_skips_c(self, small_problem):
        a, b, _ = small_problem
        res = JigsawPlan(a).run(b, want_output=False)
        assert res.c is None
        assert res.profile.duration_us > 0


class TestAblationBehaviour:
    """The version-to-version deltas of paper Section 4.4."""

    @pytest.fixture()
    def probe(self, rng):
        # The paper's probe scale is 512^3 at 95% sparsity, v=8; a reduced
        # 256 x 512 x 256 probe keeps tests fast while preserving shape.
        a = random_vector_sparse(256, 512, v=8, sparsity=0.95, rng=rng)
        b_n = 256
        plan = JigsawPlan(a)
        return plan, b_n

    def test_v1_eliminates_bank_conflicts(self, probe, rng):
        plan, n = probe
        b = rng.standard_normal((512, n)).astype(np.float16)
        p0 = plan.run(b, version="v0", want_output=False).profile
        p1 = plan.run(b, version="v1", want_output=False).profile
        assert p0.smem_bank_conflicts > 0
        # Paper: 99.48% reduction.
        reduction = 1 - p1.smem_bank_conflicts / p0.smem_bank_conflicts
        assert reduction > 0.9

    def test_v2_reduces_long_scoreboard(self, probe, rng):
        plan, n = probe
        b = rng.standard_normal((512, n)).astype(np.float16)
        p1 = plan.run(b, version="v1", want_output=False).profile
        p2 = plan.run(b, version="v2", want_output=False).profile
        # Paper: 1.82 -> 0.87.
        assert p2.warp_long_scoreboard < p1.warp_long_scoreboard

    def test_v3_reduces_smem_instructions(self, probe, rng):
        plan, n = probe
        b = rng.standard_normal((512, n)).astype(np.float16)
        p2 = plan.run(b, version="v2", want_output=False).profile
        p3 = plan.run(b, version="v3", want_output=False).profile
        i2 = p2.instruction_mix.shared_memory_instructions()
        i3 = p3.instruction_mix.shared_memory_instructions()
        # Paper: -7.78% shared memory access instructions.
        assert i3 < i2

    def test_durations_monotonically_improve(self, probe, rng):
        plan, n = probe
        b = rng.standard_normal((512, n)).astype(np.float16)
        durations = [
            plan.run(b, version=v, want_output=False).profile.duration_us
            for v in ("v0", "v1", "v2", "v3", "v4")
        ]
        for earlier, later in zip(durations, durations[1:]):
            assert later <= earlier * 1.001, durations

    def test_v4_explores_block_tiles(self, rng):
        a = random_vector_sparse(128, 256, v=8, sparsity=0.95, rng=rng)
        plan = JigsawPlan(a)
        b = rng.standard_normal((256, 128)).astype(np.float16)
        plan.run(b, version="v4", want_output=False)
        built = {bt for (bt, _avoid) in plan._formats}
        assert built == {16, 32, 64}

    def test_v4_runs_each_candidate_once(self, rng, monkeypatch):
        # Regression: with want_output=True the winning BLOCK_TILE's
        # kernel used to be simulated twice — once in the timing loop and
        # once more to produce C.  Autotuning must execute each candidate
        # exactly once and compute the output without re-simulating.
        import repro.core.api as api_mod

        a = random_vector_sparse(128, 256, v=8, sparsity=0.95, rng=rng)
        b = rng.standard_normal((256, 64)).astype(np.float16)
        plan = JigsawPlan(a)

        calls = []
        real_run = api_mod.run_jigsaw_kernel

        def counting_run(jm, b_, spec, device, **kwargs):
            calls.append(jm.config.block_tile)
            return real_run(jm, b_, spec, device, **kwargs)

        monkeypatch.setattr(api_mod, "run_jigsaw_kernel", counting_run)
        res = plan.run(b, version="v4", want_output=True)
        assert len(calls) == len(plan.block_tiles)
        assert sorted(calls) == sorted(plan.block_tiles)
        assert res.c is not None
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(res.c, ref, rtol=1e-2, atol=0.1)

    def test_v4_returns_winning_profile(self, rng, monkeypatch):
        # The profile handed back is the one that won the selection, not a
        # fresh re-execution of the winner.
        import repro.core.api as api_mod

        a = random_vector_sparse(128, 256, v=8, sparsity=0.95, rng=rng)
        b = rng.standard_normal((256, 64)).astype(np.float16)
        plan = JigsawPlan(a)

        profiles = []
        real_run = api_mod.run_jigsaw_kernel

        def recording_run(jm, b_, spec, device, **kwargs):
            res = real_run(jm, b_, spec, device, **kwargs)
            profiles.append(res.profile)
            return res

        monkeypatch.setattr(api_mod, "run_jigsaw_kernel", recording_run)
        res = plan.run(b, version="v4", want_output=True)
        fastest = min(profiles, key=lambda p: p.duration_us)
        assert res.profile is fastest


class TestKernelSpecs:
    def test_version_table(self):
        assert not V0.pad_b_tile
        assert V1.pad_b_tile and V1.pipeline.indirect_dependency_exposed
        assert not V2.pipeline.indirect_dependency_exposed
        assert V3.interleaved_metadata and not V2.interleaved_metadata
        assert set(ALL_VERSIONS) == {"v0", "v1", "v2", "v3", "v4"}

    def test_unknown_version_rejected(self, small_problem):
        a, b, _ = small_problem
        with pytest.raises(ValueError):
            JigsawPlan(a).run(b, version="v9")

    def test_plan_rejects_bad_tiles(self, small_problem):
        a, _, _ = small_problem
        with pytest.raises(ValueError):
            JigsawPlan(a, block_tiles=(48,))


class TestProfiles:
    def test_profile_scales_with_n(self, rng):
        a = random_vector_sparse(128, 256, v=4, sparsity=0.9, rng=rng)
        plan = JigsawPlan(a, block_tiles=(64,))
        small = plan.run(
            rng.standard_normal((256, 256)).astype(np.float16),
            version="v3",
            want_output=False,
        ).profile
        large = plan.run(
            rng.standard_normal((256, 2048)).astype(np.float16),
            version="v3",
            want_output=False,
        ).profile
        assert large.duration_us > small.duration_us
        assert large.grid_blocks > small.grid_blocks

    def test_higher_sparsity_runs_faster(self, rng):
        b = np.ascontiguousarray(
            np.random.default_rng(0).standard_normal((512, 512)).astype(np.float16)
        )
        durations = {}
        for sp in (0.8, 0.98):
            a = random_vector_sparse(512, 512, v=8, sparsity=sp, rng=rng)
            durations[sp] = (
                JigsawPlan(a, block_tiles=(64,))
                .run(b, version="v3", want_output=False)
                .profile.duration_us
            )
        assert durations[0.98] < durations[0.8]

    def test_mma_count_tracks_surviving_columns(self, rng):
        a = random_vector_sparse(64, 256, v=8, sparsity=0.95, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=16))
        b = rng.standard_normal((256, 64)).astype(np.float16)
        res = run_jigsaw_kernel(jm, b, V3, want_output=False)
        from repro.gpu import Op

        mma = res.profile.instruction_mix.count(Op.MMA_SP_M16N8K32_F16)
        # Dense-equivalent op count for K=256: groups = K/16 per strip.
        dense_ops = sum(
            s.n_strips * (256 // 32) * 2 * 4 for s in jm.slabs
        )
        assert mma < dense_ops  # zero-column skipping shows up in the mix
