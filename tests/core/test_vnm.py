"""Tests for the V:N:M plan path: detection, bit-exactness, persistence.

The format-zoo acceptance property lives here: a VENOM-pruned matrix
served through ``run_vnm`` is **bit-identical** (``np.array_equal``,
not allclose) to the fp32 dense reference, swept over V/M/N/sparsity.
"""

import io

import numpy as np
import pytest

from repro.core import (
    FormatSpec,
    JigsawPlan,
    VnmPlan,
    detect_vnm_spec,
    load_vnm,
    save_vnm,
)
from repro.core.serialization import (
    ArtifactError,
    ArtifactIntegrityError,
    load_jigsaw,
    save_jigsaw,
)
from repro.formats import venom_prune
from tests.conftest import random_vector_sparse


def _venom_matrix(rng, rows=128, cols=128, v=64, n=2, m=16):
    dense = rng.standard_normal((rows, cols)).astype(np.float16)
    return venom_prune(dense, v=v, n=n, m=m)


class TestDetection:
    @pytest.mark.parametrize("v", [32, 64, 128])
    @pytest.mark.parametrize("m", [8, 16])
    def test_detects_venom_pruned(self, rng, v, m):
        a = _venom_matrix(rng, rows=128, cols=128, v=v, n=2, m=m)
        spec = detect_vnm_spec(a)
        assert spec is not None
        assert spec.kind == "vnm"
        # The detected spec must actually hold (it may be a *better* fit
        # than the pruning parameters, e.g. a larger V that also works).
        from repro.formats.venom import satisfies_vnm

        assert satisfies_vnm(a, spec.v, spec.n, spec.m)
        assert spec.m == m

    def test_generic_24_matrix_detects_none(self, rng):
        # Row-wise 2:4 without shared column choices fits no V:N:M
        # candidate (M=4 is deliberately not probed).
        a = random_vector_sparse(128, 128, v=4, sparsity=0.85, rng=rng)
        assert detect_vnm_spec(a) is None

    def test_dense_matrix_detects_none(self, rng):
        a = rng.standard_normal((128, 128)).astype(np.float16)
        assert detect_vnm_spec(a) is None

    def test_empty_and_ragged_shapes_detect_none(self, rng):
        assert detect_vnm_spec(np.zeros((0, 128), np.float16)) is None
        assert detect_vnm_spec(np.zeros((128, 0), np.float16)) is None
        # 100 rows divide no V candidate.
        a = venom_prune(
            rng.standard_normal((100, 128)).astype(np.float16), v=4, n=2, m=16
        )
        assert detect_vnm_spec(a) is None


class TestBitIdentity:
    @pytest.mark.parametrize("v", [32, 64])
    @pytest.mark.parametrize("m", [8, 16])
    @pytest.mark.parametrize("n", [1, 2])
    def test_run_vnm_matches_dense_reference_exactly(self, rng, v, n, m):
        a = _venom_matrix(rng, rows=128, cols=256, v=v, n=n, m=m)
        plan = JigsawPlan(a)
        b = rng.standard_normal((256, 48)).astype(np.float16)
        res = plan.run_vnm(b)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        assert np.array_equal(res.c, ref)
        assert res.profile.duration_us > 0

    def test_fp32_panel_is_exact_too(self, rng):
        a = _venom_matrix(rng)
        plan = JigsawPlan(a)
        b = rng.standard_normal((128, 16)).astype(np.float32)
        ref = a.astype(np.float32) @ b
        assert np.array_equal(plan.run_vnm(b).c, ref)

    def test_run_vnm_raises_on_non_vnm_matrix(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        plan = JigsawPlan(a)
        assert plan.vnm_plan() is None
        with pytest.raises(ValueError, match="no V:N:M spec"):
            plan.run_vnm(rng.standard_normal((128, 8)).astype(np.float16))

    def test_pinned_spec_rejects_nonconforming_matrix(self, rng):
        a = rng.standard_normal((128, 128)).astype(np.float16)
        plan = JigsawPlan(a, format_spec="vnm:64:2:16")
        with pytest.raises(ValueError):
            plan.vnm_plan()


class TestPersistence:
    @pytest.fixture()
    def vp(self, rng):
        a = _venom_matrix(rng)
        return VnmPlan.from_dense(a, FormatSpec.vnm(v=64, n=2, m=16))

    def test_roundtrip_in_memory(self, vp):
        buf = io.BytesIO()
        save_vnm(vp, buf)
        buf.seek(0)
        back = load_vnm(buf)
        assert back.equals(vp)
        np.testing.assert_array_equal(back.matrix.to_dense(), vp.matrix.to_dense())

    def test_tampered_artifact_fails_integrity(self, vp):
        buf = io.BytesIO()
        save_vnm(vp, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        data["values"] = data["values"].copy()
        data["values"].flat[0] += np.float16(1.0)
        out = io.BytesIO()
        np.savez_compressed(out, **data)
        out.seek(0)
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_vnm(out)
        out.seek(0)
        load_vnm(out, verify=False)  # forensics path

    def test_unsupported_version_fails_loudly(self, vp):
        buf = io.BytesIO()
        save_vnm(vp, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        data["vnm_header"][0] = 99
        out = io.BytesIO()
        np.savez_compressed(out, **data)
        out.seek(0)
        with pytest.raises(ValueError, match="unsupported"):
            load_vnm(out)

    def test_loaders_reject_each_others_artifacts(self, vp, rng):
        # The sibling families use distinct header keys, so neither
        # loader can misread the other's file.
        buf = io.BytesIO()
        save_vnm(vp, buf)
        buf.seek(0)
        with pytest.raises(ArtifactError):
            load_jigsaw(buf)
        from repro.core import JigsawMatrix, TileConfig

        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=32))
        buf2 = io.BytesIO()
        save_jigsaw(jm, buf2)
        buf2.seek(0)
        with pytest.raises(ArtifactError):
            load_vnm(buf2)


class TestPlanIntegration:
    def test_vnm_resident_bytes_lazy(self, rng):
        plan = JigsawPlan(_venom_matrix(rng))
        # Unresolved: charging residency must not force detection.
        assert plan.vnm_resident_bytes() == 0
        vp = plan.vnm_plan()
        assert vp is not None
        assert plan.vnm_resident_bytes() == vp.storage_bytes()["total"] > 0

    def test_non_vnm_plan_charges_zero(self, rng):
        plan = JigsawPlan(random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng))
        assert plan.vnm_plan() is None
        assert plan.vnm_resident_bytes() == 0

    def test_cache_dir_persists_and_reloads_vnm(self, rng, tmp_path):
        a = _venom_matrix(rng)
        plan1 = JigsawPlan(a, cache_dir=tmp_path)
        vp1 = plan1.vnm_plan()
        assert vp1 is not None
        artifacts = list(tmp_path.glob("vnm-*.npz"))
        assert len(artifacts) == 1
        # A fresh plan over the same matrix loads the artifact and
        # resolves to an identical compressed plan.
        plan2 = JigsawPlan(a, cache_dir=tmp_path)
        vp2 = plan2.vnm_plan()
        assert vp2 is not None and vp2.equals(vp1)
        assert list(tmp_path.glob("vnm-*.npz")) == artifacts
