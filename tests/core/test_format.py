"""Tests for the reorder-aware storage format, swizzle, and metadata."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JigsawMatrix,
    TileConfig,
    deinterleave_metadata,
    interleave_metadata,
    naive_layout,
    swizzle_block,
    tile_metadata_words,
    unswizzle_block,
    z_swizzle_order,
)
from tests.conftest import random_vector_sparse


class TestJigsawMatrixRoundTrip:
    @pytest.mark.parametrize("block_tile", [16, 32, 64])
    def test_roundtrip(self, rng, block_tile):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=block_tile))
        np.testing.assert_array_equal(jm.to_dense(), a)

    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_roundtrip_vector_widths(self, rng, v):
        a = random_vector_sparse(64, 64, v=v, sparsity=0.8, rng=rng)
        jm = JigsawMatrix.build(a)
        np.testing.assert_array_equal(jm.to_dense(), a)

    def test_roundtrip_with_evictions(self):
        rng = np.random.default_rng(3)
        a = (rng.random((16, 32)) < 0.55).astype(np.float16)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=16))
        np.testing.assert_array_equal(jm.to_dense(), a)

    def test_roundtrip_partial_rows(self, rng):
        a = random_vector_sparse(48, 64, v=4, sparsity=0.9, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=32))
        np.testing.assert_array_equal(jm.to_dense(), a)

    def test_all_zero_matrix(self):
        a = np.zeros((32, 64), dtype=np.float16)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=32))
        np.testing.assert_array_equal(jm.to_dense(), a)

    @given(st.sampled_from([0.75, 0.9]), st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, sparsity, seed):
        rng = np.random.default_rng(seed)
        a = random_vector_sparse(32, 48, v=2, sparsity=sparsity, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=32))
        np.testing.assert_array_equal(jm.to_dense(), a)


class TestStorageAccounting:
    def test_components_present(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        jm = JigsawMatrix.build(a)
        bytes_ = jm.storage_bytes()
        for key in ("values", "col_idx_array", "block_col_idx_array", "sptc_col_idx_array"):
            assert bytes_[key] > 0
        assert bytes_["total"] == sum(v for k, v in bytes_.items() if k != "total")

    def test_compressed_smaller_than_dense_at_high_sparsity(self, rng):
        a = random_vector_sparse(64, 256, v=8, sparsity=0.95, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=16))
        assert jm.storage_bytes()["total"] < jm.dense_bytes()

    def test_metadata_words_per_op(self, rng):
        a = random_vector_sparse(32, 64, v=2, sparsity=0.8, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=32))
        slab = jm.slabs[0]
        # 16 words per mma.sp (paper Section 3.4.3).
        assert slab.meta_words.shape[-1] == 16
        assert slab.meta_interleaved.shape[-1] == 32


class TestSwizzle:
    def test_order_is_permutation(self):
        order = z_swizzle_order(16, 8)
        assert sorted(order.tolist()) == list(range(128))

    def test_z_pattern_quadrants(self):
        # First quadrant (top-left 8x4) occupies the first 32 slots.
        order = z_swizzle_order(16, 8)
        first = order[:32]
        rr, cc = first // 8, first % 8
        assert rr.max() < 8 and cc.max() < 4

    def test_roundtrip(self, rng):
        block = rng.standard_normal((16, 8)).astype(np.float16)
        flat = swizzle_block(block)
        np.testing.assert_array_equal(unswizzle_block(flat, 16, 8), block)

    def test_roundtrip_other_shapes(self, rng):
        block = rng.standard_normal((4, 4)).astype(np.float16)
        np.testing.assert_array_equal(
            unswizzle_block(swizzle_block(block), 4, 4), block
        )

    def test_rejects_odd_dims(self):
        with pytest.raises(ValueError):
            z_swizzle_order(3, 8)

    def test_rejects_bad_flat_length(self):
        with pytest.raises(ValueError):
            unswizzle_block(np.zeros(10, np.float16), 16, 8)

    def test_slab_swizzled_accessor(self, rng):
        a = random_vector_sparse(32, 64, v=2, sparsity=0.8, rng=rng)
        jm = JigsawMatrix.build(a, TileConfig(block_tile=32))
        slab = jm.slabs[0]
        flat = slab.swizzled_values(0, 0)
        np.testing.assert_array_equal(
            unswizzle_block(flat, 16, 8), slab.values[0, 0]
        )


class TestMetadataInterleave:
    def test_words_shape(self, rng):
        pos = rng.integers(0, 2, size=(16, 16)).astype(np.uint8)
        pos[:, 1::2] += 2  # keep positions strictly increasing per pair
        words = tile_metadata_words(pos)
        assert words.shape == (16,)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            tile_metadata_words(np.zeros((8, 16), np.uint8))

    def test_interleave_roundtrip(self, rng):
        w0 = rng.integers(0, 2**32, size=16, dtype=np.uint64).astype(np.uint32)
        w1 = rng.integers(0, 2**32, size=16, dtype=np.uint64).astype(np.uint32)
        inter = interleave_metadata(w0, w1)
        r0, r1 = deinterleave_metadata(inter)
        np.testing.assert_array_equal(r0, w0)
        np.testing.assert_array_equal(r1, w1)

    def test_interleaved_is_permutation_of_naive(self, rng):
        w0 = rng.integers(0, 2**32, size=16, dtype=np.uint64).astype(np.uint32)
        w1 = rng.integers(0, 2**32, size=16, dtype=np.uint64).astype(np.uint32)
        inter = interleave_metadata(w0, w1)
        naive = naive_layout(w0, w1)
        assert sorted(inter.tolist()) == sorted(naive.tolist())

    def test_provider_lanes_get_their_ops_words(self):
        w0 = np.arange(16, dtype=np.uint32)
        w1 = np.arange(100, 116, dtype=np.uint32)
        inter = interleave_metadata(w0, w1)
        # Lane 0 and 1 are F=0 providers; lanes 2, 3 are F=1 providers.
        assert inter[0] == 0 and inter[1] == 1
        assert inter[2] == 100 and inter[3] == 101

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            interleave_metadata(np.zeros(8, np.uint32), np.zeros(16, np.uint32))
        with pytest.raises(ValueError):
            deinterleave_metadata(np.zeros(16, np.uint32))
