"""Tests for the model API and format serialization."""

import io

import numpy as np
import pytest

from repro.core import (
    JigsawMatrix,
    SparseLinear,
    SparseModel,
    TileConfig,
    load_jigsaw,
    roundtrip_equal,
    save_jigsaw,
)
from repro.data import vector_prune
from tests.conftest import random_vector_sparse


class TestSerialization:
    @pytest.fixture()
    def jm(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        return JigsawMatrix.build(a, TileConfig(block_tile=32))

    def test_roundtrip_in_memory(self, jm):
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        assert roundtrip_equal(jm, back)
        np.testing.assert_array_equal(back.to_dense(), jm.to_dense())

    def test_roundtrip_on_disk(self, jm, tmp_path):
        path = tmp_path / "layer.npz"
        save_jigsaw(jm, path)
        back = load_jigsaw(path)
        assert roundtrip_equal(jm, back)

    def test_loaded_matrix_runs_kernels(self, jm, rng):
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        b = rng.standard_normal((128, 64)).astype(np.float16)
        from repro.core.kernels import V3, run_jigsaw_kernel

        res = run_jigsaw_kernel(back, b, V3)
        np.testing.assert_allclose(
            res.c,
            jm.to_dense().astype(np.float32) @ b.astype(np.float32),
            rtol=1e-3,
            atol=1e-2,
        )

    def test_load_rejects_bad_version(self, jm):
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        data["header"][0] = 99
        buf2 = io.BytesIO()
        np.savez_compressed(buf2, **data)
        buf2.seek(0)
        with pytest.raises(ValueError, match="version"):
            load_jigsaw(buf2)

    def test_load_validates_corruption(self, jm):
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        data["s0_positions"][0, 0, 0, 0] = 7  # illegal 2-bit position
        buf2 = io.BytesIO()
        np.savez_compressed(buf2, **data)
        buf2.seek(0)
        with pytest.raises(ValueError):
            load_jigsaw(buf2)

    def test_roundtrip_equal_detects_differences(self, jm, rng):
        a2 = random_vector_sparse(64, 128, v=4, sparsity=0.95, rng=rng)
        other = JigsawMatrix.build(a2, TileConfig(block_tile=32))
        assert not roundtrip_equal(jm, other)

    def test_roundtrip_persists_avoid_bank_conflicts(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        jm = JigsawMatrix.build(
            a, TileConfig(block_tile=32), avoid_bank_conflicts=False
        )
        assert jm.avoid_bank_conflicts is False
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        assert back.avoid_bank_conflicts is False
        assert roundtrip_equal(jm, back)

    def test_roundtrip_equal_checks_avoid_flag(self, jm):
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        back.avoid_bank_conflicts = not back.avoid_bank_conflicts
        assert not roundtrip_equal(jm, back)

    def test_v7_header_carries_flag_mma_tile_format_and_checksum(self, jm):
        from repro.core.serialization import FORMAT_VERSION

        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = np.load(buf)
        header = data["header"]
        assert header[0] == FORMAT_VERSION == 7
        assert len(header) == 13
        assert header[6] == int(jm.avoid_bank_conflicts)
        assert header[7] == jm.config.mma_tile
        # v6: fields 8..11 are the FormatSpec (kind, V, N, M).
        assert tuple(int(x) for x in header[8:12]) == jm.format_spec.header_fields()
        # v7: the last field is the dynamic-sparsity content version.
        assert header[12] == jm.content_version == 0
        assert data["checksum"].shape == (32,)  # sha256 digest
        # v5+ also persists the compiled whole-plan payload.
        for key in ("c_w", "c_b_rows", "c_strip_idx", "c_g_starts", "c_out_rows"):
            assert key in data.files

    def test_v6_roundtrips_vnm_format_spec(self, jm):
        from repro.core import FormatSpec

        jm.format_spec = FormatSpec.parse("vnm:64:2:16")
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        assert back.format_spec == FormatSpec.parse("vnm:64:2:16")
        assert roundtrip_equal(jm, back)
        # roundtrip_equal distinguishes plans by format spec alone.
        back.format_spec = FormatSpec()
        assert not roundtrip_equal(jm, back)

    def test_loads_v1_artifact_with_default_flag(self, jm):
        # A v1 artifact has a 6-field header and no persisted reorder
        # settings; loading assumes the documented v1-era defaults.
        from repro.core.serialization import (
            PRE_V3_MMA_TILE_DEFAULT,
            V1_AVOID_BANK_CONFLICTS_DEFAULT,
        )

        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        data["header"] = np.array([1, *data["header"][1:6]], dtype=np.int64)
        assert len(data["header"]) == 6
        buf2 = io.BytesIO()
        np.savez_compressed(buf2, **data)
        buf2.seek(0)
        back = load_jigsaw(buf2)
        assert back.avoid_bank_conflicts is V1_AVOID_BANK_CONFLICTS_DEFAULT
        assert back.config.mma_tile == PRE_V3_MMA_TILE_DEFAULT
        np.testing.assert_array_equal(back.to_dense(), jm.to_dense())


class TestSerializationVersionMatrix:
    """v1/v2/v3 artifacts all load; unknown versions fail loudly; v3
    round-trips the full TileConfig (the pre-v3 headers dropped
    ``mma_tile``, so a non-default MMA_TILE plan aliased a 16-tile one)."""

    @pytest.fixture()
    def jm(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        return JigsawMatrix.build(a, TileConfig(block_tile=32))

    @staticmethod
    def _downgrade(jm, version: int) -> io.BytesIO:
        """Rewrite a freshly saved artifact with an older header layout."""
        from repro.core.serialization import CHECKSUM_MIN_VERSION, _content_digest

        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        fields = {1: 6, 2: 7, 3: 8, 4: 8, 5: 8, 6: 12}[version]
        data["header"] = np.array(
            [version, *data["header"][1:fields]], dtype=np.int64
        )
        if version >= CHECKSUM_MIN_VERSION:
            # v4/v5 verify the digest, which covers the rewritten header.
            data["checksum"] = np.frombuffer(_content_digest(data), dtype=np.uint8)
        else:
            del data["checksum"]
        out = io.BytesIO()
        np.savez_compressed(out, **data)
        out.seek(0)
        return out

    @pytest.mark.parametrize("version", [1, 2])
    def test_pre_v3_artifacts_still_load(self, jm, version):
        from repro.core.serialization import PRE_V3_MMA_TILE_DEFAULT

        back = load_jigsaw(self._downgrade(jm, version))
        assert back.config.mma_tile == PRE_V3_MMA_TILE_DEFAULT
        assert roundtrip_equal(jm, back)
        np.testing.assert_array_equal(back.to_dense(), jm.to_dense())

    def test_v2_artifact_keeps_avoid_flag(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.85, rng=rng)
        jm = JigsawMatrix.build(
            a, TileConfig(block_tile=32), avoid_bank_conflicts=False
        )
        back = load_jigsaw(self._downgrade(jm, 2))
        assert back.avoid_bank_conflicts is False

    @pytest.mark.parametrize("version", [3, 4, 5])
    def test_pre_v6_artifacts_load_with_default_format_spec(self, jm, version):
        # Pre-v6 writers only ever built rigid 2:4 plans; their artifacts
        # must load with the default spec and stay dense-equal.
        from repro.core import FormatSpec

        back = load_jigsaw(self._downgrade(jm, version))
        assert back.format_spec == FormatSpec()
        assert str(back.format_spec) == "2:4"
        assert roundtrip_equal(jm, back)
        np.testing.assert_array_equal(back.to_dense(), jm.to_dense())

    @pytest.mark.parametrize("version", [3, 4, 5, 6])
    def test_pre_v7_artifacts_load_with_content_version_zero(self, jm, version):
        # Pre-v7 writers predate dynamic updates entirely, so their
        # artifacts must load at content version 0 (the pristine state).
        back = load_jigsaw(self._downgrade(jm, version))
        assert back.content_version == 0
        assert roundtrip_equal(jm, back)
        np.testing.assert_array_equal(back.to_dense(), jm.to_dense())

    def test_v7_roundtrips_content_version(self, jm):
        jm.content_version = 5
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        assert back.content_version == 5
        assert roundtrip_equal(jm, back)
        # roundtrip_equal distinguishes plans by content version alone.
        back.content_version = 0
        assert not roundtrip_equal(jm, back)

    def test_v5_downgrade_recomputed_checksum_is_verified(self, jm):
        # The downgrade helper really produces checksum-verified v5
        # artifacts: tampering with one still fails integrity.
        from repro.core.serialization import ArtifactIntegrityError

        buf = self._downgrade(jm, 5)
        data = dict(np.load(buf))
        assert int(data["header"][0]) == 5
        assert len(data["header"]) == 8
        data["s0_values"] = data["s0_values"].copy()
        data["s0_values"].flat[0] += np.float16(1.0)
        out = io.BytesIO()
        np.savez_compressed(out, **data)
        out.seek(0)
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_jigsaw(out)

    @pytest.mark.parametrize("version", [0, 8, 99])
    def test_unknown_versions_fail_loudly(self, jm, version):
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        data["header"][0] = version
        buf2 = io.BytesIO()
        np.savez_compressed(buf2, **data)
        buf2.seek(0)
        with pytest.raises(ValueError, match="version"):
            load_jigsaw(buf2)

    def test_v3_artifact_without_checksum_still_loads(self, jm):
        # A genuine v3 artifact predates the checksum array entirely.
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        del data["checksum"]
        data["header"][0] = 3
        out = io.BytesIO()
        np.savez_compressed(out, **data)
        out.seek(0)
        back = load_jigsaw(out)
        assert roundtrip_equal(jm, back)

    def test_tampered_payload_fails_integrity(self, jm):
        from repro.core.serialization import ArtifactIntegrityError

        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        data["s0_values"] = data["s0_values"].copy()
        data["s0_values"].flat[0] += np.float16(1.0)
        out = io.BytesIO()
        np.savez_compressed(out, **data)
        out.seek(0)
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_jigsaw(out)
        # Forensics path: verify=False skips the digest check.
        out.seek(0)
        load_jigsaw(out, verify=False)

    def test_missing_checksum_on_v4_fails_integrity(self, jm):
        from repro.core.serialization import ArtifactIntegrityError

        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        data = dict(np.load(buf))
        del data["checksum"]
        out = io.BytesIO()
        np.savez_compressed(out, **data)
        out.seek(0)
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_jigsaw(out)

    def test_truncated_file_raises_typed_artifact_error(self, jm, tmp_path):
        from repro.core.serialization import ArtifactError

        path = tmp_path / "layer.npz"
        save_jigsaw(jm, path)
        path.write_bytes(path.read_bytes()[:40])  # truncate mid-zip
        with pytest.raises(ArtifactError, match="unreadable"):
            load_jigsaw(path)
        path.write_bytes(b"not an npz at all")
        with pytest.raises(ArtifactError):
            load_jigsaw(path)

    def test_v3_roundtrips_non_default_mma_tile(self, jm):
        # The format arrays don't depend on config.mma_tile, so fidelity
        # of the persisted geometry can be tested by relabeling.
        jm.config = TileConfig(block_tile=32, mma_tile=8)
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        assert back.config.mma_tile == 8
        assert back.config == jm.config
        assert roundtrip_equal(jm, back)

    def test_roundtrip_equal_checks_block_tile_n(self, jm):
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        back.config = TileConfig(block_tile=32, block_tile_n=128)
        assert not roundtrip_equal(jm, back)

    def test_roundtrip_equal_checks_mma_tile(self, jm):
        buf = io.BytesIO()
        save_jigsaw(jm, buf)
        buf.seek(0)
        back = load_jigsaw(buf)
        back.config = TileConfig(block_tile=32, mma_tile=8)
        assert not roundtrip_equal(jm, back)


class TestSparseLinear:
    def test_forward_matches_reference(self, rng):
        w = vector_prune(
            rng.standard_normal((64, 128)).astype(np.float16), v=4, sparsity=0.85
        ).astype(np.float16)
        layer = SparseLinear(w, block_tiles=(32,))
        x = rng.standard_normal((128, 16)).astype(np.float16)
        run = layer.forward(x)
        ref = w.astype(np.float32) @ x.astype(np.float32)
        np.testing.assert_allclose(run.output.astype(np.float32), ref, rtol=1e-2, atol=0.1)
        assert run.duration_us > 0

    def test_rejects_bad_input_width(self, rng):
        layer = SparseLinear(np.zeros((16, 32), np.float16))
        with pytest.raises(ValueError, match="features"):
            layer.forward(np.zeros((33, 4), np.float16))

    def test_rejects_1d_weight(self):
        with pytest.raises(ValueError):
            SparseLinear(np.zeros(8, np.float16))


class TestSparseModel:
    def test_mlp_forward(self, rng):
        model = SparseModel.from_pruned_mlp(
            (64, 128, 32), v=4, sparsity=0.8, rng=rng
        )
        x = rng.standard_normal((64, 8)).astype(np.float16)
        out, runs = model.forward(x)
        assert out.shape == (32, 8)
        assert len(runs) == 2
        assert model.total_duration_us(runs) > 0

    def test_relu_applied_between_layers(self, rng):
        model = SparseModel.from_pruned_mlp((32, 32, 32), v=4, sparsity=0.5, rng=rng)
        x = rng.standard_normal((32, 4)).astype(np.float16)
        _, runs = model.forward(x)
        # The intermediate activations fed to layer 2 were ReLU'd: re-run
        # layer 2 manually and compare.
        inter = np.maximum(runs[0].output, np.float16(0))
        manual = model.layers[1].forward(inter)
        np.testing.assert_allclose(
            manual.output.astype(np.float32),
            runs[1].output.astype(np.float32),
            rtol=1e-3,
            atol=1e-2,
        )

    def test_rejects_mismatched_layers(self, rng):
        l1 = SparseLinear(np.zeros((16, 32), np.float16), name="a")
        l2 = SparseLinear(np.zeros((8, 24), np.float16), name="b")
        with pytest.raises(ValueError, match="features"):
            SparseModel(layers=[l1, l2])

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            SparseModel(layers=[], activation="swish")

    def test_from_pruned_mlp_validates(self):
        with pytest.raises(ValueError):
            SparseModel.from_pruned_mlp((64,), v=4, sparsity=0.5)
