"""Tests for the tuning table and format validation (failure injection)."""

import numpy as np
import pytest

from repro.core import JigsawMatrix, TileConfig
from repro.core.tuning import (
    TuningTable,
    estimate_vector_width,
    matrix_features,
)
from tests.conftest import random_vector_sparse


class TestFeatures:
    def test_vector_width_estimation(self, rng):
        for v in (2, 4, 8):
            a = random_vector_sparse(64, 64, v=v, sparsity=0.85, rng=rng)
            assert estimate_vector_width(a) == v

    def test_vector_width_scalar_matrix(self, rng):
        a = np.zeros((64, 64), np.float16)
        a[3, 7] = 1  # no vector structure
        assert estimate_vector_width(a) == 1

    def test_features_bucketing(self, rng):
        a = random_vector_sparse(64, 300, v=4, sparsity=0.91, rng=rng)
        sp, v, k = matrix_features(a)
        assert sp == 0.9
        assert v == 4
        assert k == 256  # nearest power of two


class TestTuningTable:
    def test_measure_on_miss_then_hit(self, rng):
        table = TuningTable()
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        bt1 = table.best_block_tile(a, n=64)
        assert table.misses == 1 and table.hits == 0
        bt2 = table.best_block_tile(a, n=64)
        assert bt2 == bt1
        assert table.hits == 1

    def test_similar_matrices_share_entry(self, rng):
        table = TuningTable()
        a1 = random_vector_sparse(64, 128, v=8, sparsity=0.95, rng=rng)
        a2 = random_vector_sparse(64, 128, v=8, sparsity=0.95, rng=rng)
        table.best_block_tile(a1, n=64)
        table.best_block_tile(a2, n=64)
        assert table.misses == 1 and table.hits == 1

    def test_prepopulate(self):
        table = TuningTable()
        table.prepopulate(
            sparsities=(0.95,), vector_widths=(8,), k_values=(128,), m=64
        )
        assert len(table.entries) == 1
        assert table.hit_rate < 1.0

    def test_choices_are_legal_tiles(self, rng):
        table = TuningTable()
        a = random_vector_sparse(64, 128, v=2, sparsity=0.85, rng=rng)
        assert table.best_block_tile(a, n=64) in (16, 32, 64)


class TestFormatValidation:
    @pytest.fixture()
    def jm(self, rng):
        a = random_vector_sparse(32, 64, v=4, sparsity=0.85, rng=rng)
        return JigsawMatrix.build(a, TileConfig(block_tile=32))

    def test_clean_format_validates(self, jm):
        jm.validate()

    def test_detects_duplicate_column_ids(self, jm):
        slab = jm.slabs[0]
        used = np.flatnonzero(slab.reorder.col_ids >= 0)
        if len(used) >= 2:
            slab.reorder.col_ids[used[1]] = slab.reorder.col_ids[used[0]]
            with pytest.raises(ValueError, match="duplicate"):
                jm.validate()

    def test_detects_out_of_range_column(self, jm):
        slab = jm.slabs[0]
        used = np.flatnonzero(slab.reorder.col_ids >= 0)
        slab.reorder.col_ids[used[0]] = 10_000
        with pytest.raises(ValueError, match="out of range"):
            jm.validate()

    def test_detects_broken_permutation(self, jm):
        slab = jm.slabs[0]
        if slab.reorder.tile_perms.size:
            slab.reorder.tile_perms[0, 0, 0] = slab.reorder.tile_perms[0, 0, 1]
            with pytest.raises(ValueError, match="permutation"):
                jm.validate()

    def test_detects_illegal_metadata(self, jm):
        slab = jm.slabs[0]
        slab.positions[0, 0, 0, 0] = 7
        with pytest.raises(ValueError, match="2 bits"):
            jm.validate()

    def test_detects_unsorted_metadata(self, jm):
        slab = jm.slabs[0]
        slab.positions[0, 0, 0, 0] = 3
        slab.positions[0, 0, 0, 1] = 1
        with pytest.raises(ValueError, match="strictly increasing"):
            jm.validate()

    def test_detects_interleave_corruption(self, jm):
        slab = jm.slabs[0]
        slab.meta_interleaved[0, 0, 0] ^= 0xFFFF
        with pytest.raises(ValueError, match="interleaved"):
            jm.validate()
