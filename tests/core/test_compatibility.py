"""Tests for the compatible-column-group search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compatibility import (
    CoverSolution,
    _bilateral_cover,
    _greedy_cover,
    find_compatible_quads,
    find_cover,
    least_compatible_column,
    quads_to_masks,
)


def tile_from_columns(cols_nnz_rows):
    """Build a (16, 16) mask from {col: [rows with nonzeros]}."""
    nz = np.zeros((16, 16), dtype=bool)
    for c, rows in cols_nnz_rows.items():
        nz[rows, c] = True
    return nz


def cover_is_valid(nz, cover):
    """Check a cover's order makes every aligned quad 2:4-compatible."""
    order = list(cover.order)
    assert sorted(order) == list(range(16)), "cover must be a permutation"
    permuted = nz[:, order]
    counts = permuted.reshape(nz.shape[0], 4, 4).sum(axis=2)
    return bool(np.all(counts <= 2))


class TestCompatibleQuads:
    def test_empty_tile_all_quads_compatible(self):
        nz = np.zeros((16, 16), dtype=bool)
        assert len(find_compatible_quads(nz)) == 1820  # C(16, 4)

    def test_full_tile_no_quads(self):
        nz = np.ones((16, 16), dtype=bool)
        assert len(find_compatible_quads(nz)) == 0

    def test_exact_definition(self):
        # Columns 0,1,2 share a nonzero row: any quad with all three fails.
        nz = tile_from_columns({0: [0], 1: [0], 2: [0]})
        quads = find_compatible_quads(nz)
        bad = [q for q in quads.tolist() if {0, 1, 2} <= set(q)]
        assert not bad
        # Quads with at most two of them are fine.
        assert any({0, 1} <= set(q) and 2 not in q for q in quads.tolist())

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            find_compatible_quads(np.zeros((16, 8), dtype=bool))

    def test_masks(self):
        quads = np.array([[0, 1, 2, 3], [12, 13, 14, 15]])
        masks = quads_to_masks(quads)
        assert masks[0] == 0xF
        assert masks[1] == 0xF000


class TestFindCover:
    def test_identity_fast_path(self):
        nz = np.zeros((16, 16), dtype=bool)
        nz[:, 0] = True  # a single dense column: identity already 2:4
        cover = find_cover(nz)
        assert cover is not None
        assert cover.order == tuple(range(16))

    def test_reorder_needed_case(self):
        # Paper Figure 5-style: three columns colliding in one quad.
        nz = tile_from_columns(
            {0: list(range(16)), 1: list(range(16)), 2: list(range(16))}
        )
        cover = find_cover(nz)
        assert cover is not None
        assert cover_is_valid(nz, cover)
        # The three dense columns must land in different quads... or at
        # most two share one.
        order = list(cover.order)
        for q in range(4):
            quad = order[q * 4 : (q + 1) * 4]
            assert sum(c in (0, 1, 2) for c in quad) <= 2

    def test_impossible_tile(self):
        # Nine fully-dense columns: some quad must hold >= 3 of them.
        nz = np.zeros((16, 16), dtype=bool)
        nz[:, :9] = True
        assert find_cover(nz) is None

    def test_eight_dense_columns_possible(self):
        # Exactly 8 dense columns: 2 per quad works.
        nz = np.zeros((16, 16), dtype=bool)
        nz[:, :8] = True
        cover = find_cover(nz)
        assert cover is not None
        assert cover_is_valid(nz, cover)

    def test_greedy_and_bilateral_agree_on_feasibility(self):
        rng = np.random.default_rng(9)
        greedy_missed = 0
        for _ in range(60):
            nz = rng.random((16, 16)) < 0.3
            g = _greedy_cover(nz)
            b = _bilateral_cover(nz, prefer_conflict_free=False)
            if g is not None:
                assert cover_is_valid(nz, g)
                # exact search must also find one
                assert b is not None
            if g is None and b is not None:
                greedy_missed += 1
            if b is not None:
                assert cover_is_valid(nz, b)
        # greedy may miss some feasible tiles; find_cover covers the gap.

    def test_find_cover_none_means_truly_infeasible(self):
        rng = np.random.default_rng(10)
        for _ in range(40):
            nz = rng.random((16, 16)) < 0.45
            cover = find_cover(nz)
            exact = _bilateral_cover(nz, prefer_conflict_free=False)
            assert (cover is None) == (exact is None)
            if cover is not None:
                assert cover_is_valid(nz, cover)

    @given(st.floats(0.05, 0.5), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_cover_validity_property(self, density, seed):
        rng = np.random.default_rng(seed)
        nz = rng.random((16, 16)) < density
        cover = find_cover(nz)
        if cover is not None:
            assert cover_is_valid(nz, cover)


class TestBankConflictPreference:
    def test_collision_counting(self):
        sol = CoverSolution(
            quads=((0, 8, 1, 2), (3, 4, 5, 6), (7, 9, 10, 11), (12, 13, 14, 15))
        )
        # First half holds 0 and 8; second half holds 7 and 15 -> two
        # same-bank pairs.
        assert sol.bank_collisions() == 2

    def test_identity_is_conflict_free(self):
        sol = CoverSolution(
            quads=((0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11), (12, 13, 14, 15))
        )
        assert sol.bank_collisions() == 0

    def test_preference_reduces_collisions(self):
        rng = np.random.default_rng(11)
        pref_total, nopref_total = 0, 0
        for _ in range(40):
            nz = rng.random((16, 16)) < 0.25
            c_pref = find_cover(nz, prefer_conflict_free=True)
            c_nopref = find_cover(nz, prefer_conflict_free=False)
            if c_pref is not None:
                pref_total += c_pref.bank_collisions()
            if c_nopref is not None:
                nopref_total += c_nopref.bank_collisions()
        assert pref_total <= nopref_total


class TestEviction:
    def test_least_compatible_is_the_obstructor(self):
        # Column 0 collides with everything; others are empty.
        nz = np.zeros((16, 16), dtype=bool)
        nz[:, 0] = True
        nz[:, 1] = True
        nz[:, 2] = True
        # 0,1,2 all dense: each appears in fewer quads than sparse columns.
        victim = least_compatible_column(nz)
        assert victim in (0, 1, 2)

    def test_zero_columns_never_evicted(self):
        nz = np.zeros((16, 16), dtype=bool)
        nz[0, 5] = True
        assert least_compatible_column(nz) == 5

    def test_all_zero_tile_rejected(self):
        with pytest.raises(ValueError):
            least_compatible_column(np.zeros((16, 16), dtype=bool))
