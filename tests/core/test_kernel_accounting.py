"""White-box tests of the Jigsaw kernel's event accounting.

The ablation's validity rests on the accounted events matching what the
real kernel would execute; these tests pin the accounting to analytic
expectations on constructed matrices.
"""

import numpy as np
import pytest

from repro.core import JigsawMatrix, TileConfig
from repro.core.kernels import V0, V1, V2, V3, run_jigsaw_kernel
from repro.gpu import Op
from tests.conftest import random_vector_sparse


@pytest.fixture()
def jm64(rng):
    # 64x128 with v=4 at 75%: no zero-column luck at BLOCK_TILE=64 is
    # not guaranteed, so compute expectations from the built format.
    a = random_vector_sparse(64, 128, v=4, sparsity=0.75, rng=rng)
    return JigsawMatrix.build(a, TileConfig(block_tile=64))


class TestInstructionCounts:
    def test_mma_count_formula(self, jm64, rng):
        n = 128
        b = rng.standard_normal((128, n)).astype(np.float16)
        res = run_jigsaw_kernel(jm64, b, V3, want_output=False)
        mma = res.profile.instruction_mix.count(Op.MMA_SP_M16N8K32_F16)
        expected = 0
        n_blocks = -(-n // 64)
        for slab in jm64.slabs:
            ops = slab.n_ops if slab.n_groups else 0
            # strips x ops x warps-per-strip(2) x n-slices(4), per N block.
            expected += slab.n_strips * ops * 2 * 4 * n_blocks
        assert mma == expected

    def test_metadata_instructions_halve_with_interleave(self, jm64, rng):
        b = rng.standard_normal((128, 64)).astype(np.float16)
        p2 = run_jigsaw_kernel(jm64, b, V2, want_output=False).profile
        p3 = run_jigsaw_kernel(jm64, b, V3, want_output=False).profile
        lds_naive = p2.instruction_mix.count(Op.LDS)
        ldm1_inter = p3.instruction_mix.count(Op.LDMATRIX_X1)
        # One interleaved load per TWO ops vs one naive load per op.
        assert ldm1_inter == pytest.approx(np.ceil(lds_naive / 2), abs=lds_naive * 0.26)

    def test_stg_matches_output_bytes(self, jm64, rng):
        n = 128
        b = rng.standard_normal((128, n)).astype(np.float16)
        res = run_jigsaw_kernel(jm64, b, V3, want_output=False)
        stg = res.profile.instruction_mix.count(Op.STG)
        # C bytes = M x N x 2 moved in 512 B warp stores.
        expected = 64 * n * 2 / 512
        assert stg == pytest.approx(expected)

    def test_gmem_store_sectors_match_c(self, jm64, rng):
        n = 64
        b = rng.standard_normal((128, n)).astype(np.float16)
        res = run_jigsaw_kernel(jm64, b, V3, want_output=False)
        assert res.profile.gmem.store_sectors == 64 * n * 2 // 32


class TestConflictAccounting:
    def test_unpadded_conflicts_are_8way(self, rng):
        # Identity-permuted tiles on an unpadded 64-wide B tile: every
        # ldmatrix stage is exactly 8-way conflicted.
        a = np.zeros((64, 64), dtype=np.float16)
        a[:, 0] = 1.0  # one surviving group with identity cover
        jm = JigsawMatrix.build(a, TileConfig(block_tile=64), avoid_bank_conflicts=False)
        b = rng.standard_normal((64, 64)).astype(np.float16)
        p0 = run_jigsaw_kernel(jm, b, V0, want_output=False).profile
        p1 = run_jigsaw_kernel(jm, b, V1, want_output=False).profile
        # v0: 8 transactions per stage -> 7 conflicts per access.
        assert p0.smem.conflict_rate > 3.0
        assert p1.smem_bank_conflicts < p0.smem_bank_conflicts / 10

    def test_b_gather_sectors_track_surviving_columns(self, rng):
        # B rows are only fetched for surviving (nonzero) columns.
        a_small = np.zeros((64, 128), dtype=np.float16)
        a_small[:, :16] = 1.0  # 16 surviving columns
        a_large = np.zeros((64, 128), dtype=np.float16)
        a_large[:, :64] = 1.0  # 64 surviving columns
        b = rng.standard_normal((128, 64)).astype(np.float16)
        sect = {}
        for name, a in (("small", a_small), ("large", a_large)):
            jm = JigsawMatrix.build(a, TileConfig(block_tile=64))
            res = run_jigsaw_kernel(jm, b, V3, want_output=False)
            sect[name] = res.profile.gmem.load_sectors
        assert sect["large"] > 2 * sect["small"]


class TestPipelineAccounting:
    def test_v2_removes_long_scoreboard_stalls(self, jm64, rng):
        b = rng.standard_normal((128, 64)).astype(np.float16)
        p1 = run_jigsaw_kernel(jm64, b, V1, want_output=False).profile
        p2 = run_jigsaw_kernel(jm64, b, V2, want_output=False).profile
        assert p2.warp_long_scoreboard < p1.warp_long_scoreboard

    def test_weights_scale_with_n_blocks(self, jm64, rng):
        b1 = rng.standard_normal((128, 64)).astype(np.float16)
        b4 = rng.standard_normal((128, 256)).astype(np.float16)
        p1 = run_jigsaw_kernel(jm64, b1, V3, want_output=False).profile
        p4 = run_jigsaw_kernel(jm64, b4, V3, want_output=False).profile
        assert p4.grid_blocks == 4 * p1.grid_blocks
        assert p4.total_instructions == pytest.approx(4 * p1.total_instructions)
