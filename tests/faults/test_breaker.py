"""Tests for the circuit breaker state machine (deterministic fake clock)."""

import pytest

from repro.faults import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, clock):
        br = CircuitBreaker(clock=clock)
        assert br.state == CLOSED
        assert br.allow()

    def test_trips_after_threshold_consecutive_failures(self, clock):
        br = CircuitBreaker(failure_threshold=3, cooldown_s=1.0, clock=clock)
        br.record_failure()
        br.record_failure()
        assert br.state == CLOSED
        br.record_failure()
        assert br.state == OPEN
        assert br.trips == 1
        assert not br.allow()

    def test_success_resets_the_failure_count(self, clock):
        br = CircuitBreaker(failure_threshold=2, clock=clock)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == CLOSED  # streak broken: 1+1 non-consecutive

    def test_half_open_probe_after_cooldown(self, clock):
        br = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        br.record_failure()
        assert not br.allow()
        clock.advance(0.5)
        assert not br.allow()  # still cooling down
        clock.advance(0.6)
        assert br.allow()  # the probe
        assert br.state == HALF_OPEN
        assert not br.allow()  # only one probe at a time

    def test_probe_success_closes(self, clock):
        br = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        br.record_failure()
        clock.advance(2.0)
        assert br.allow()
        br.record_success()
        assert br.state == CLOSED
        assert br.allow()

    def test_probe_failure_reopens_for_another_cooldown(self, clock):
        br = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        br.record_failure()
        clock.advance(2.0)
        assert br.allow()
        br.record_failure()
        assert br.state == OPEN
        assert br.trips == 2
        assert not br.allow()
        clock.advance(1.1)
        assert br.allow()  # next probe window

    def test_zero_cooldown_probes_immediately(self, clock):
        br = CircuitBreaker(failure_threshold=1, cooldown_s=0.0, clock=clock)
        br.record_failure()
        assert br.allow()
        assert br.state == HALF_OPEN

    def test_validation(self, clock):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_s=-1.0)


class TestBreakerBoard:
    def test_keys_are_independent(self, clock):
        board = BreakerBoard(failure_threshold=1, cooldown_s=9.0, clock=clock)
        board.get("w0", "jigsaw").record_failure()
        assert board.get("w0", "jigsaw").state == OPEN
        assert board.get("w0", "hybrid").state == CLOSED
        assert board.get("w1", "jigsaw").state == CLOSED

    def test_same_key_same_breaker(self, clock):
        board = BreakerBoard(clock=clock)
        assert board.get("w0", "jigsaw") is board.get("w0", "jigsaw")

    def test_snapshot_and_trips(self, clock):
        board = BreakerBoard(failure_threshold=1, cooldown_s=9.0, clock=clock)
        board.get("w0", "jigsaw").record_failure()
        board.get("w0", "hybrid").allow()
        snap = board.snapshot()
        assert snap["w0/jigsaw"] == OPEN
        assert snap["w0/hybrid"] == CLOSED
        assert board.trips == 1


class TestHalfOpenProbeTtl:
    """An abandoned half-open probe (outcome never recorded) must not
    wedge the breaker: after ``probe_ttl_s`` the slot is reclaimed."""

    def _tripped(self, clock, **kwargs):
        br = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, clock=clock, **kwargs
        )
        br.record_failure()
        assert br.state == OPEN
        clock.advance(1.0)  # past the cooldown: next allow is the probe
        return br

    def test_abandoned_probe_slot_reclaimed_after_ttl(self, clock):
        br = self._tripped(clock, probe_ttl_s=0.5)
        assert br.allow()  # probe claimed ... and its caller vanishes
        assert not br.allow()  # single-probe rule still holds
        clock.advance(0.49)
        assert not br.allow()  # TTL not yet elapsed
        clock.advance(0.02)
        assert br.allow()  # slot reclaimed: the breaker cannot wedge
        br.record_success()
        assert br.state == CLOSED

    def test_ttl_defaults_to_cooldown(self, clock):
        br = self._tripped(clock)
        assert br.probe_ttl_s == br.cooldown_s == 1.0
        assert br.allow()
        clock.advance(0.99)
        assert not br.allow()
        clock.advance(0.02)
        assert br.allow()

    def test_probe_outcome_still_wins_within_ttl(self, clock):
        br = self._tripped(clock, probe_ttl_s=10.0)
        assert br.allow()
        br.record_failure()  # probe failed: re-open, no TTL involved
        assert br.state == OPEN
        assert not br.allow()

    def test_board_passes_ttl_through(self, clock):
        board = BreakerBoard(
            failure_threshold=1, cooldown_s=1.0, probe_ttl_s=0.25, clock=clock
        )
        br = board.get("w0", "jigsaw")
        assert br.probe_ttl_s == 0.25

    def test_negative_ttl_rejected(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(clock=clock, probe_ttl_s=-0.1)
