"""Tests for the deterministic fault-injection plan."""

import os

import pytest

from repro.faults import FaultInjectedError, FaultPlan, TransientError, active_plan, maybe_inject

#: CI's chaos job sweeps this seed; determinism must hold for any value.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


class TestTriggers:
    def test_unregistered_site_is_a_no_op(self):
        fp = FaultPlan(seed=CHAOS_SEED)
        fp.inject("never.registered")  # must not raise

    def test_probability_one_always_fires(self):
        fp = FaultPlan(seed=CHAOS_SEED).add("s", probability=1.0)
        for _ in range(5):
            with pytest.raises(FaultInjectedError, match="'s'"):
                fp.inject("s")
        assert fp.fire_count("s") == 5

    def test_probability_zero_never_fires(self):
        fp = FaultPlan(seed=CHAOS_SEED).add("s", probability=0.0)
        for _ in range(100):
            fp.inject("s")
        assert fp.fire_count("s") == 0

    def test_count_bounds_fires(self):
        fp = FaultPlan(seed=CHAOS_SEED).add("s", probability=1.0, count=2)
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                fp.inject("s")
        fp.inject("s")  # exhausted: silent
        assert fp.fire_count("s") == 2

    def test_after_skips_initial_evaluations(self):
        fp = FaultPlan(seed=CHAOS_SEED).add("s", probability=1.0, after=3)
        for _ in range(3):
            fp.inject("s")
        with pytest.raises(FaultInjectedError):
            fp.inject("s")

    def test_custom_error_factory(self):
        fp = FaultPlan(seed=CHAOS_SEED).add(
            "s", error=lambda site: KeyError(f"poisoned {site}")
        )
        with pytest.raises(KeyError, match="poisoned"):
            fp.inject("s")

    def test_injected_error_is_transient(self):
        assert issubclass(FaultInjectedError, TransientError)

    def test_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().add("s", probability=1.5)
        with pytest.raises(ValueError, match="count"):
            FaultPlan().add("s", count=-1)
        with pytest.raises(ValueError, match="after"):
            FaultPlan().add("s", after=-1)


class TestDeterminism:
    def _pattern(self, seed, site, n=200, p=0.3):
        fp = FaultPlan(seed=seed).add(site, probability=p)
        fired = []
        for _ in range(n):
            try:
                fp.inject(site)
            except FaultInjectedError:
                fired.append(True)
            else:
                fired.append(False)
        return fired

    def test_same_seed_same_site_same_pattern(self):
        assert self._pattern(CHAOS_SEED, "a") == self._pattern(CHAOS_SEED, "a")

    def test_different_seeds_differ(self):
        assert self._pattern(CHAOS_SEED, "a") != self._pattern(CHAOS_SEED + 1, "a")

    def test_sites_draw_independently(self):
        # Site b's presence must not perturb site a's sequence.
        fp = FaultPlan(seed=CHAOS_SEED).add("a", probability=0.3).add("b", probability=0.3)
        fired = []
        for _ in range(200):
            try:
                fp.inject("a")
            except FaultInjectedError:
                fired.append(True)
            else:
                fired.append(False)
            try:
                fp.inject("b")
            except FaultInjectedError:
                pass
        assert fired == self._pattern(CHAOS_SEED, "a")

    def test_reset_replays_the_sequence(self):
        fp = FaultPlan(seed=CHAOS_SEED).add("a", probability=0.3)
        def collect():
            out = []
            for _ in range(50):
                try:
                    fp.inject("a")
                except FaultInjectedError:
                    out.append(True)
                else:
                    out.append(False)
            return out
        first = collect()
        fp.reset()
        assert collect() == first
        assert fp.counters()["a"][0] == 50  # evaluated counter re-zeroed then re-run


class TestLifecycle:
    def test_disable_stops_injection_keeps_counters(self):
        fp = FaultPlan(seed=CHAOS_SEED).add("s", probability=1.0)
        with pytest.raises(FaultInjectedError):
            fp.inject("s")
        fp.disable()
        fp.inject("s")
        assert fp.fire_count("s") == 1
        fp.enable()
        with pytest.raises(FaultInjectedError):
            fp.inject("s")

    def test_context_manager_arms_global_plan(self):
        fp = FaultPlan(seed=CHAOS_SEED).add("s", probability=1.0)
        assert active_plan() is None
        maybe_inject("s")  # disarmed: no-op
        with fp:
            assert active_plan() is fp
            with pytest.raises(FaultInjectedError):
                maybe_inject("s")
        assert active_plan() is None
        maybe_inject("s")

    def test_nested_arming_rejected(self):
        with FaultPlan() as _fp:
            with pytest.raises(RuntimeError, match="armed"):
                FaultPlan().__enter__()

    def test_explicit_plan_overrides_global(self):
        explicit = FaultPlan(seed=CHAOS_SEED).add("s", probability=1.0)
        with pytest.raises(FaultInjectedError):
            maybe_inject("s", explicit)

    def test_total_fired(self):
        fp = FaultPlan(seed=CHAOS_SEED).add("a", count=1).add("b", count=1)
        for site in ("a", "b"):
            with pytest.raises(FaultInjectedError):
                fp.inject(site)
        assert fp.total_fired == 2
