"""Tests for bounded retry with deterministic-jitter backoff."""

import pytest

from repro.faults import FaultInjectedError, RetryPolicy, TransientError, call_with_retry


class Flaky:
    """Fails the first ``failures`` calls with ``error``, then returns 42."""

    def __init__(self, failures, error=TransientError):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"boom {self.calls}")
        return 42


class TestBackoffSchedule:
    def test_exponential_growth_capped(self):
        p = RetryPolicy(base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03, jitter=0.0)
        assert p.backoff_s(0) == pytest.approx(0.01)
        assert p.backoff_s(1) == pytest.approx(0.02)
        assert p.backoff_s(2) == pytest.approx(0.03)  # capped
        assert p.backoff_s(5) == pytest.approx(0.03)

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(base_delay_s=0.01, jitter=0.5)
        d1 = p.backoff_s(0, key="w0:jigsaw")
        assert d1 == p.backoff_s(0, key="w0:jigsaw")  # same key: same delay
        assert d1 != p.backoff_s(0, key="w1:jigsaw")  # keyed jitter
        assert 0.005 <= d1 <= 0.01  # shrinks by at most `jitter` fraction

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)


class TestCallWithRetry:
    def _policy(self):
        return RetryPolicy(max_attempts=3, base_delay_s=0.001)

    def test_transient_failures_are_retried(self):
        sleeps = []
        fn = Flaky(failures=2)
        result = call_with_retry(fn, self._policy(), sleep=sleeps.append)
        assert result == 42
        assert fn.calls == 3
        assert len(sleeps) == 2
        assert all(s > 0 for s in sleeps)

    def test_exhaustion_raises_final_error(self):
        fn = Flaky(failures=99)
        with pytest.raises(TransientError, match="boom 3"):
            call_with_retry(fn, self._policy(), sleep=lambda s: None)
        assert fn.calls == 3

    def test_injected_faults_count_as_transient(self):
        fn = Flaky(failures=1, error=FaultInjectedError)
        assert call_with_retry(fn, self._policy(), sleep=lambda s: None) == 42

    def test_non_transient_errors_propagate_immediately(self):
        fn = Flaky(failures=1, error=ValueError)
        with pytest.raises(ValueError):
            call_with_retry(fn, self._policy(), sleep=lambda s: None)
        assert fn.calls == 1  # no retry

    def test_on_retry_hook_observes_attempts(self):
        seen = []
        fn = Flaky(failures=2)
        call_with_retry(
            fn,
            self._policy(),
            sleep=lambda s: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert [a for a, _ in seen] == [0, 1]

    def test_single_attempt_policy_never_sleeps(self):
        sleeps = []
        fn = Flaky(failures=1)
        with pytest.raises(TransientError):
            call_with_retry(fn, RetryPolicy(max_attempts=1), sleep=sleeps.append)
        assert sleeps == []


class TestDeadlineAwareRetry:
    """Backoff never overshoots a request deadline: when sleeping the
    next delay would land past ``deadline_t``, the retry is abandoned and
    the current error propagates (the slack belongs to the fallback)."""

    def _policy(self):
        return RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0)

    def test_retry_abandoned_when_backoff_overshoots_deadline(self):
        t = [100.0]
        sleeps = []
        fn = Flaky(failures=2)
        with pytest.raises(TransientError, match="boom 1"):
            call_with_retry(
                fn,
                self._policy(),
                sleep=sleeps.append,
                deadline_t=100.005,  # first backoff is 0.01 > 5ms of slack
                clock=lambda: t[0],
            )
        assert fn.calls == 1  # no second attempt
        assert sleeps == []  # and crucially: no sleep burned either

    def test_retry_proceeds_when_deadline_has_room(self):
        t = [100.0]

        def sleep(s):
            t[0] += s

        fn = Flaky(failures=2)
        assert (
            call_with_retry(
                fn,
                self._policy(),
                sleep=sleep,
                deadline_t=101.0,
                clock=lambda: t[0],
            )
            == 42
        )
        assert fn.calls == 3

    def test_deadline_cuts_midway_through_the_schedule(self):
        # First backoff (10ms) fits, second (20ms) would overshoot.
        t = [0.0]

        def sleep(s):
            t[0] += s

        fn = Flaky(failures=99)
        with pytest.raises(TransientError, match="boom 2"):
            call_with_retry(
                fn,
                self._policy(),
                sleep=sleep,
                deadline_t=0.025,
                clock=lambda: t[0],
            )
        assert fn.calls == 2

    def test_no_deadline_keeps_legacy_behaviour(self):
        fn = Flaky(failures=2)
        assert call_with_retry(fn, self._policy(), sleep=lambda s: None) == 42
