"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_spmm_defaults(self):
        args = build_parser().parse_args(["spmm"])
        assert args.m == 1024 and args.v == 8

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_device(self, capsys):
        assert main(["device"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "312" in out

    def test_reorder(self, capsys):
        rc = main(
            ["reorder", "--m", "128", "--k", "128", "--sparsity", "0.9", "--v", "4",
             "--block-tile", "32"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "reorder success" in out
        assert "col_idx_array" in out

    def test_spmm_small(self, capsys):
        rc = main(
            ["spmm", "--m", "128", "--k", "128", "--n", "64", "--sparsity", "0.9",
             "--v", "4", "--systems", "jigsaw,cublas"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "jigsaw" in out and "vs cuBLAS" in out

    def test_spmm_unknown_system(self, capsys):
        rc = main(["spmm", "--systems", "jigsaw,tpu"])
        assert rc == 2
        assert "unknown systems" in capsys.readouterr().err

    def test_figure_overhead(self, capsys):
        assert main(["figure", "overhead"]) == 0
        assert "56.25%" in capsys.readouterr().out

    def test_reorder_workers_flag(self, capsys):
        rc = main(
            ["reorder", "--m", "128", "--k", "128", "--sparsity", "0.9", "--v", "4",
             "--block-tile", "32", "--workers", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "reorder success" in out
        assert "preprocessing" in out

    def test_reorder_plan_cache_flag(self, capsys, tmp_path):
        argv = ["reorder", "--m", "64", "--k", "128", "--sparsity", "0.9", "--v", "4",
                "--block-tile", "32", "--plan-cache", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "miss" in first
        assert main(argv) == 0  # second run loads the artifact
        second = capsys.readouterr().out
        assert "hit" in second
        assert list(tmp_path.glob("jigsaw-*.npz"))

    def test_spmm_accepts_engine_flags(self, capsys):
        rc = main(
            ["spmm", "--m", "128", "--k", "128", "--n", "64", "--sparsity", "0.9",
             "--v", "4", "--systems", "jigsaw", "--workers", "1"]
        )
        assert rc == 0
        assert "jigsaw" in capsys.readouterr().out

    def test_chaos_bench(self, capsys, tmp_path):
        rc = main(
            ["chaos-bench", "--matrices", "1", "--requests", "8", "--m", "64",
             "--k", "128", "--n", "16", "--v", "4", "--fault-rate", "0.9",
             "--max-batch", "4", "--breaker-cooldown-s", "0.01",
             "--plan-cache", str(tmp_path)]
        )
        assert rc == 0  # zero raised futures is the exit contract
        out = capsys.readouterr().out
        assert "chaos drill" in out
        assert "artifacts quarantined" in out
        assert "breakers all re-closed" in out


class TestFleetStatusCli:
    def _write_status(self, tmp_path):
        import json

        from tests.analysis.test_fleet_top import SAMPLE_STATUS

        p = tmp_path / "status.json"
        p.write_text(json.dumps(SAMPLE_STATUS))
        return str(p)

    def test_fleet_status_dumps_json(self, capsys, tmp_path):
        import json

        path = self._write_status(tmp_path)
        assert main(["fleet-status", "--status-file", path]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.fleet_status/v1"

    def test_fleet_status_missing_file_exits_2(self, capsys, tmp_path):
        rc = main(["fleet-status", "--status-file", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "no fleet status" in capsys.readouterr().err

    def test_top_once_renders_a_frame(self, capsys, tmp_path):
        path = self._write_status(tmp_path)
        assert main(["top", "--status-file", path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "fast_burn" in out

    def test_top_once_missing_file_exits_2(self, capsys, tmp_path):
        rc = main(["top", "--status-file", str(tmp_path / "nope.json"), "--once"])
        assert rc == 2
        assert "waiting for fleet status" in capsys.readouterr().out

    def test_top_parser_defaults(self):
        args = build_parser().parse_args(["top", "--status-file", "s.json"])
        assert args.interval == 1.0
        assert args.once is False
