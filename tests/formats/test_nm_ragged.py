"""Regression tests: ragged widths (cols % m != 0) in the N:M helpers.

``satisfies_nm``/``compress_nm`` used to reject any width that did not
divide M outright, which made ragged-K matrices unclassifiable even
when their structure satisfied the pattern.  A trailing partial group
is semantically a full group whose missing columns are zero, so the
helpers now pad — these tests pin the exact semantics.
"""

import numpy as np
import pytest

from repro.formats import (
    NMCompressedMatrix,
    compress_nm,
    expand_nm,
    nm_violation_fraction,
    satisfies_nm,
)


def _ragged_24(rng, rows, cols):
    """A ragged-width matrix that genuinely satisfies 2:4 after padding."""
    a = np.zeros((rows, cols), dtype=np.float16)
    groups = -(-cols // 4)
    for r in range(rows):
        for g in range(groups):
            lo, hi = g * 4, min((g + 1) * 4, cols)
            picks = rng.choice(hi - lo, size=min(2, hi - lo), replace=False)
            for p in picks:
                a[r, lo + p] = np.float16(rng.standard_normal())
    return a


@pytest.mark.parametrize("cols", [5, 7, 13, 30])
class TestRaggedWidths:
    def test_satisfies_nm_accepts_conforming_ragged(self, rng, cols):
        a = _ragged_24(rng, 8, cols)
        assert satisfies_nm(a, 2, 4)

    def test_satisfies_nm_still_rejects_violations(self, rng, cols):
        a = _ragged_24(rng, 8, cols)
        a[0, :4] = np.float16(1.0)  # 4 nonzeros in the first aligned group
        assert not satisfies_nm(a, 2, 4)
        assert nm_violation_fraction(a, 2, 4) > 0

    def test_compress_expand_roundtrip_is_exact(self, rng, cols):
        a = _ragged_24(rng, 8, cols)
        vals, pos = compress_nm(a, 2, 4)
        groups = -(-cols // 4)
        assert vals.shape == (8, groups * 2)
        back = expand_nm(vals, pos, cols, 2, 4)
        np.testing.assert_array_equal(back, a)

    def test_compressed_matrix_roundtrip(self, rng, cols):
        a = _ragged_24(rng, 8, cols)
        nm = NMCompressedMatrix.from_dense(a, 2, 4)
        np.testing.assert_array_equal(nm.to_dense(), a)
        b = rng.standard_normal((cols, 6)).astype(np.float16)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_array_equal(nm.spmm_reference(b), ref)


class TestRaggedEdgeCases:
    def test_compress_raises_on_real_violation_only(self, rng):
        a = _ragged_24(rng, 4, 7)
        compress_nm(a, 2, 4)  # conforming ragged width: no raise
        a[0, 4:7] = np.float16(1.0)  # 3 nonzeros in the padded last group
        with pytest.raises(ValueError, match="allows at most"):
            compress_nm(a, 2, 4)

    def test_padding_zeros_never_count_as_nonzeros(self):
        # One column: each group is one real column plus three pad zeros.
        a = np.ones((4, 1), dtype=np.float16)
        assert satisfies_nm(a, 1, 4)
        vals, pos = compress_nm(a, 1, 4)
        np.testing.assert_array_equal(expand_nm(vals, pos, 1, 1, 4), a)

    def test_expand_rejects_inconsistent_cols(self, rng):
        vals, pos = compress_nm(_ragged_24(rng, 4, 7), 2, 4)
        for bad in (4, 9):  # ceil(bad/4) != 2 groups
            with pytest.raises(ValueError, match="inconsistent"):
                expand_nm(vals, pos, bad, 2, 4)

    def test_aligned_widths_unchanged(self, rng):
        a = _ragged_24(rng, 8, 16)
        vals, pos = compress_nm(a, 2, 4)
        assert vals.shape == (8, 8)
        np.testing.assert_array_equal(expand_nm(vals, pos, 16, 2, 4), a)
