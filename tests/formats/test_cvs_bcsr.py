"""Tests for the CVS (CLASP) and BCSR (Magicube) formats."""

import numpy as np
import pytest

from repro.formats import BCSRMatrix, CVSMatrix
from tests.conftest import random_vector_sparse


class TestCVS:
    def test_roundtrip_vector_sparse(self, rng):
        dense = random_vector_sparse(32, 64, v=4, sparsity=0.8, rng=rng)
        cvs = CVSMatrix.from_dense(dense, pv=4)
        np.testing.assert_array_equal(cvs.to_dense(), dense)

    def test_vector_count_matches_structure(self, rng):
        dense = random_vector_sparse(32, 64, v=4, sparsity=0.9, rng=rng)
        cvs = CVSMatrix.from_dense(dense, pv=4)
        expected = int(np.any(dense.reshape(8, 4, 64) != 0, axis=1).sum())
        assert cvs.num_vectors == expected

    def test_pv_mismatch_stores_explicit_zeros(self, rng):
        # v=4 data stored with pv=2 still round-trips: each 4-tall vector
        # becomes two 2-tall vectors.
        dense = random_vector_sparse(32, 64, v=4, sparsity=0.8, rng=rng)
        cvs = CVSMatrix.from_dense(dense, pv=2)
        np.testing.assert_array_equal(cvs.to_dense(), dense)

    def test_rejects_indivisible_rows(self):
        with pytest.raises(ValueError):
            CVSMatrix.from_dense(np.zeros((10, 4), np.float16), pv=4)

    def test_rejects_nonpositive_pv(self):
        with pytest.raises(ValueError):
            CVSMatrix.from_dense(np.zeros((8, 4), np.float16), pv=0)

    def test_spmm_reference(self, rng):
        dense = random_vector_sparse(16, 32, v=2, sparsity=0.85, rng=rng)
        cvs = CVSMatrix.from_dense(dense, pv=2)
        b = rng.standard_normal((32, 8)).astype(np.float16)
        np.testing.assert_allclose(
            cvs.spmm_reference(b),
            dense.astype(np.float32) @ b.astype(np.float32),
            rtol=1e-3,
            atol=1e-3,
        )

    def test_spmm_rejects_mismatch(self, rng):
        cvs = CVSMatrix.from_dense(np.zeros((8, 8), np.float16), pv=2)
        with pytest.raises(ValueError):
            cvs.spmm_reference(np.zeros((9, 2), np.float16))

    def test_storage_accounts_offsets_and_values(self, rng):
        dense = random_vector_sparse(8, 16, v=2, sparsity=0.5, rng=rng)
        cvs = CVSMatrix.from_dense(dense, pv=2)
        assert cvs.storage_bytes() >= cvs.num_vectors * 2 * 2  # fp16 values

    def test_empty_panels_allowed(self):
        dense = np.zeros((8, 8), np.float16)
        dense[0, 0] = 1  # only panel 0 has a vector
        cvs = CVSMatrix.from_dense(dense, pv=2)
        assert list(cvs.panel_vector_counts()) == [1, 0, 0, 0]


class TestBCSR:
    def test_roundtrip_column_vectors(self, rng):
        dense = random_vector_sparse(32, 64, v=8, sparsity=0.9, rng=rng)
        bcsr = BCSRMatrix.from_dense(dense, bh=8, bw=1)
        np.testing.assert_array_equal(bcsr.to_dense(), dense)

    def test_roundtrip_square_blocks(self, rng):
        dense = (rng.random((16, 16)) > 0.6).astype(np.float16)
        bcsr = BCSRMatrix.from_dense(dense, bh=4, bw=4)
        np.testing.assert_array_equal(bcsr.to_dense(), dense)

    def test_nnz_counts_stored_elements(self, rng):
        dense = random_vector_sparse(16, 16, v=4, sparsity=0.75, rng=rng)
        bcsr = BCSRMatrix.from_dense(dense, bh=4, bw=1)
        vectors = int(np.any(dense.reshape(4, 4, 16) != 0, axis=1).sum())
        assert bcsr.num_blocks == vectors
        assert bcsr.nnz == vectors * 4

    def test_rejects_untileable_shape(self):
        with pytest.raises(ValueError):
            BCSRMatrix.from_dense(np.zeros((10, 8), np.float16), bh=4)

    def test_spmm_reference(self, rng):
        dense = random_vector_sparse(16, 32, v=4, sparsity=0.8, rng=rng)
        bcsr = BCSRMatrix.from_dense(dense, bh=4, bw=1)
        b = rng.standard_normal((32, 8)).astype(np.float16)
        np.testing.assert_allclose(
            bcsr.spmm_reference(b),
            dense.astype(np.float32) @ b.astype(np.float32),
            rtol=1e-3,
            atol=1e-3,
        )

    def test_block_row_counts(self):
        dense = np.zeros((8, 8), np.float16)
        dense[0:4, 0] = 1
        dense[0:4, 5] = 1
        bcsr = BCSRMatrix.from_dense(dense, bh=4, bw=1)
        assert list(bcsr.block_row_counts()) == [2, 0]

    def test_spmm_rejects_mismatch(self):
        bcsr = BCSRMatrix.from_dense(np.zeros((4, 4), np.float16), bh=4, bw=1)
        with pytest.raises(ValueError):
            bcsr.spmm_reference(np.zeros((3, 1), np.float16))
