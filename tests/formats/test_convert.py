"""Tests for cross-format conversion helpers."""

import numpy as np
import pytest

from repro.formats import (
    CSRMatrix,
    csr_to_bcsr,
    csr_to_cvs,
    dense_to_nm,
    formats_agree,
    to_dense,
    vector_nnz_structure,
)
from tests.conftest import random_vector_sparse


class TestConversions:
    def test_csr_to_cvs_preserves_matrix(self, rng):
        dense = random_vector_sparse(16, 32, v=4, sparsity=0.8, rng=rng)
        csr = CSRMatrix.from_dense(dense)
        cvs = csr_to_cvs(csr, pv=4)
        assert formats_agree(csr, cvs, dense)

    def test_csr_to_bcsr_preserves_matrix(self, rng):
        dense = random_vector_sparse(16, 32, v=4, sparsity=0.8, rng=rng)
        csr = CSRMatrix.from_dense(dense)
        bcsr = csr_to_bcsr(csr, bh=4)
        assert formats_agree(csr, bcsr)

    def test_dense_to_nm_rejects_nonconformant(self, rng):
        dense = np.ones((4, 8), np.float16)
        with pytest.raises(ValueError):
            dense_to_nm(dense)

    def test_dense_to_nm_accepts_conformant(self):
        dense = np.zeros((4, 8), np.float16)
        dense[:, 0] = 1
        dense[:, 5] = 2
        nm = dense_to_nm(dense)
        np.testing.assert_array_equal(nm.to_dense(), dense)

    def test_to_dense_passthrough(self):
        arr = np.eye(3, dtype=np.float16)
        assert to_dense(arr) is arr

    def test_formats_agree_detects_mismatch(self, rng):
        a = random_vector_sparse(8, 16, v=2, sparsity=0.5, rng=rng)
        b = a.copy()
        b[0, 0] += 1
        assert not formats_agree(a, b)

    def test_formats_agree_trivial_cases(self):
        assert formats_agree()
        assert formats_agree(np.eye(2, dtype=np.float16))


class TestVectorStructure:
    def test_recovers_base_mask(self, rng):
        base = rng.random((8, 16)) > 0.7
        dense = np.repeat(base, 4, axis=0).astype(np.float16)
        np.testing.assert_array_equal(vector_nnz_structure(dense, 4), base)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            vector_nnz_structure(np.zeros((10, 4), np.float16), 4)
