"""Tests for CSR storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.formats import CSRMatrix


class TestRoundTrip:
    def test_simple(self):
        dense = np.array([[1, 0, 2], [0, 0, 0], [0, 3, 0]], dtype=np.float16)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)
        assert csr.nnz == 3

    def test_empty_matrix(self):
        dense = np.zeros((4, 4), dtype=np.float16)
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 0
        np.testing.assert_array_equal(csr.to_dense(), dense)

    def test_full_matrix(self):
        dense = np.ones((3, 5), dtype=np.float16)
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 15
        assert csr.density == 1.0

    @given(
        hnp.arrays(
            np.float16,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=24),
            elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, -2.0, 0.5]),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, dense):
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)
        assert csr.nnz == int(np.count_nonzero(dense))


class TestValidation:
    def test_rejects_bad_row_ptr_length(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(2, 2),
                values=np.array([], np.float16),
                col_indices=np.array([], np.int32),
                row_ptr=np.array([0], np.int32),
            )

    def test_rejects_decreasing_row_ptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(2, 2),
                values=np.array([1.0], np.float16),
                col_indices=np.array([0], np.int32),
                row_ptr=np.array([0, 1, 0], np.int32),
            )

    def test_rejects_out_of_range_column(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(1, 2),
                values=np.array([1.0], np.float16),
                col_indices=np.array([5], np.int32),
                row_ptr=np.array([0, 1], np.int32),
            )

    def test_rejects_misaligned_values(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(1, 4),
                values=np.array([1.0, 2.0], np.float16),
                col_indices=np.array([0], np.int32),
                row_ptr=np.array([0, 2], np.int32),
            )

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.zeros(4, np.float16))


class TestAccessors:
    def test_row_access(self):
        dense = np.array([[0, 5, 0, 7], [1, 0, 0, 0]], dtype=np.float16)
        csr = CSRMatrix.from_dense(dense)
        cols, vals = csr.row(0)
        assert list(cols) == [1, 3]
        assert list(vals) == [5, 7]

    def test_row_nnz(self):
        dense = np.array([[0, 5, 0, 7], [1, 0, 0, 0]], dtype=np.float16)
        csr = CSRMatrix.from_dense(dense)
        assert list(csr.row_nnz()) == [2, 1]

    def test_sparsity(self):
        dense = np.zeros((10, 10), dtype=np.float16)
        dense[0, 0] = 1
        csr = CSRMatrix.from_dense(dense)
        assert csr.sparsity == pytest.approx(0.99)

    def test_storage_bytes(self):
        dense = np.eye(4, dtype=np.float16)
        csr = CSRMatrix.from_dense(dense)
        # 4 fp16 + 4 int32 cols + 5 int32 ptr = 8 + 16 + 20.
        assert csr.storage_bytes() == 44


class TestSpmmReference:
    def test_matches_numpy(self, rng):
        dense = (rng.random((8, 16)) > 0.7).astype(np.float16)
        csr = CSRMatrix.from_dense(dense)
        b = rng.standard_normal((16, 4)).astype(np.float16)
        np.testing.assert_allclose(
            csr.spmm_reference(b),
            dense.astype(np.float32) @ b.astype(np.float32),
            rtol=1e-6,
        )

    def test_rejects_dimension_mismatch(self):
        csr = CSRMatrix.from_dense(np.eye(4, dtype=np.float16))
        with pytest.raises(ValueError):
            csr.spmm_reference(np.zeros((5, 2), np.float16))
