"""Tests for N:M compression, metadata packing, and the VENOM format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    NMCompressedMatrix,
    VenomMatrix,
    compress_nm,
    expand_nm,
    nm_violation_fraction,
    pack_metadata,
    satisfies_nm,
    unpack_metadata,
    venom_prune,
    venom_satisfies_sptc,
)


def random_nm(rows, cols, n, m, rng):
    a = np.zeros((rows, cols), dtype=np.float16)
    for i in range(rows):
        for g in range(cols // m):
            k = rng.integers(0, n + 1)
            pos = rng.choice(m, size=k, replace=False)
            a[i, g * m + pos] = rng.standard_normal(k).astype(np.float16) + 1.5
    return a


class TestSatisfiesNM:
    def test_zero_matrix(self):
        assert satisfies_nm(np.zeros((4, 8), np.float16))

    def test_violating_matrix(self):
        a = np.zeros((1, 4), np.float16)
        a[0, :3] = 1
        assert not satisfies_nm(a)

    def test_violation_fraction(self):
        a = np.zeros((2, 8), np.float16)
        a[0, :3] = 1  # one violating group out of four
        assert nm_violation_fraction(a) == pytest.approx(0.25)

    def test_violation_fraction_pads_odd_width(self):
        a = np.ones((1, 6), np.float16)
        assert 0 < nm_violation_fraction(a) <= 1


class TestCompressExpand:
    def test_roundtrip(self, rng):
        a = random_nm(16, 32, 2, 4, rng)
        vals, pos = compress_nm(a)
        np.testing.assert_array_equal(expand_nm(vals, pos, 32), a)

    def test_positions_strictly_increasing(self, rng):
        a = random_nm(8, 16, 2, 4, rng)
        _, pos = compress_nm(a)
        pairs = pos.reshape(8, 4, 2)
        assert np.all(pairs[:, :, 0] < pairs[:, :, 1])

    def test_rejects_violation(self):
        a = np.ones((1, 4), np.float16)
        with pytest.raises(ValueError):
            compress_nm(a)

    def test_ragged_width_pads_instead_of_rejecting(self):
        # Used to raise on cols % m != 0; a trailing partial group is a
        # full group with zero-padded missing columns (see
        # tests/formats/test_nm_ragged.py for the full property sweep).
        a = np.zeros((2, 6), np.float16)
        a[:, 0] = np.float16(1.0)
        vals, pos = compress_nm(a)
        assert vals.shape == (2, 4)  # two groups
        np.testing.assert_array_equal(expand_nm(vals, pos, 6), a)

    def test_1to2_pattern(self, rng):
        a = random_nm(8, 16, 1, 2, rng)
        vals, pos = compress_nm(a, 1, 2)
        assert vals.shape == (8, 8)
        np.testing.assert_array_equal(expand_nm(vals, pos, 16, 1, 2), a)

    def test_matches_gpu_compress_on_2to4(self, rng):
        from repro.gpu import compress_2to4

        a = random_nm(16, 32, 2, 4, rng)
        v1, p1 = compress_nm(a)
        v2, p2 = compress_2to4(a)
        np.testing.assert_array_equal(v1, v2)
        np.testing.assert_array_equal(p1, p2)


class TestMetadataPacking:
    def test_roundtrip(self, rng):
        pos = rng.integers(0, 4, size=(8, 32)).astype(np.uint8)
        words = pack_metadata(pos)
        assert words.shape == (8, 2)
        np.testing.assert_array_equal(unpack_metadata(words, 32), pos)

    def test_sixteen_positions_per_word(self):
        # Paper Section 3.4.3: 16x16 2-bit indices pack into 16 integers.
        pos = np.zeros((16, 16), np.uint8)
        assert pack_metadata(pos).size == 16

    def test_known_packing(self):
        pos = np.zeros((1, 16), np.uint8)
        pos[0, 0] = 3
        pos[0, 1] = 1
        word = pack_metadata(pos)[0, 0]
        assert word == 3 | (1 << 2)

    def test_rejects_wide_positions(self):
        pos = np.full((1, 16), 4, np.uint8)
        with pytest.raises(ValueError):
            pack_metadata(pos)

    def test_partial_word_roundtrip(self, rng):
        pos = rng.integers(0, 4, size=(3, 10)).astype(np.uint8)
        words = pack_metadata(pos)
        assert words.shape == (3, 1)
        np.testing.assert_array_equal(unpack_metadata(words, 10), pos)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_unpack_pack_identity_on_words(self, word):
        words = np.array([[word]], dtype=np.uint32)
        pos = unpack_metadata(words, 16)
        np.testing.assert_array_equal(pack_metadata(pos), words)


class TestNMCompressedMatrix:
    def test_roundtrip(self, rng):
        a = random_nm(16, 64, 2, 4, rng)
        mat = NMCompressedMatrix.from_dense(a)
        np.testing.assert_array_equal(mat.to_dense(), a)

    def test_storage_half_plus_metadata(self, rng):
        a = random_nm(16, 64, 2, 4, rng)
        mat = NMCompressedMatrix.from_dense(a)
        dense_bytes = 16 * 64 * 2
        # values are half; metadata adds 1/16 of dense (2 bits per element
        # kept = 32 values/row -> 2 uint32 words/row).
        assert mat.values.nbytes == dense_bytes // 2
        assert mat.storage_bytes() < dense_bytes

    def test_spmm_reference(self, rng):
        a = random_nm(16, 32, 2, 4, rng)
        b = rng.standard_normal((32, 8)).astype(np.float16)
        mat = NMCompressedMatrix.from_dense(a)
        np.testing.assert_allclose(
            mat.spmm_reference(b),
            a.astype(np.float32) @ b.astype(np.float32),
            rtol=1e-3,
            atol=1e-3,
        )


class TestVenom:
    def test_prune_produces_sptc_conformant(self, rng):
        dense = rng.standard_normal((64, 64)).astype(np.float16)
        for v in (32, 64):
            pruned = venom_prune(dense, v=v)
            assert venom_satisfies_sptc(pruned), f"V={v}"

    def test_prune_keeps_half_the_columns(self, rng):
        dense = rng.standard_normal((32, 32)).astype(np.float16)
        pruned = venom_prune(dense, v=32)
        assert np.count_nonzero(pruned) == dense.size // 2

    def test_prune_keeps_largest_columns(self):
        dense = np.zeros((4, 4), np.float16)
        dense[:, 0] = 10
        dense[:, 1] = 5
        dense[:, 2] = 1
        dense[:, 3] = 0.5
        pruned = venom_prune(dense, v=4)
        assert np.all(pruned[:, 0] == 10)
        assert np.all(pruned[:, 1] == 5)
        assert np.all(pruned[:, 2:] == 0)

    def test_prune_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            venom_prune(np.zeros((30, 8), np.float16), v=32)
        with pytest.raises(ValueError):
            venom_prune(np.zeros((32, 6), np.float16), v=32)

    def test_format_roundtrip(self, rng):
        dense = venom_prune(rng.standard_normal((64, 32)).astype(np.float16), v=32)
        vm = VenomMatrix.from_dense(dense, v=32)
        np.testing.assert_array_equal(vm.to_dense(), dense)

    def test_format_rejects_nonconformant(self, rng):
        dense = rng.standard_normal((32, 8)).astype(np.float16)
        with pytest.raises(ValueError):
            VenomMatrix.from_dense(dense, v=32)

    def test_metadata_amortized_over_v(self, rng):
        dense64 = venom_prune(rng.standard_normal((128, 64)).astype(np.float16), v=64)
        dense32 = venom_prune(rng.standard_normal((128, 64)).astype(np.float16), v=32)
        m64 = VenomMatrix.from_dense(dense64, v=64)
        m32 = VenomMatrix.from_dense(dense32, v=32)
        # Larger V shares each column choice across more rows.
        assert m64.col_choices.size < m32.col_choices.size

    def test_spmm_reference(self, rng):
        dense = venom_prune(rng.standard_normal((64, 32)).astype(np.float16), v=32)
        vm = VenomMatrix.from_dense(dense, v=32)
        b = rng.standard_normal((32, 8)).astype(np.float16)
        np.testing.assert_allclose(
            vm.spmm_reference(b),
            dense.astype(np.float32) @ b.astype(np.float32),
            rtol=1e-3,
            atol=1e-3,
        )
