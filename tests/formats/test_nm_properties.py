"""Hypothesis property tests on N:M compression across patterns."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import compress_nm, expand_nm, satisfies_nm


@st.composite
def nm_matrix(draw):
    """A random matrix guaranteed to satisfy a drawn N:M pattern."""
    n = draw(st.sampled_from([1, 2]))
    m = draw(st.sampled_from([2, 4, 8]))
    if n > m:
        n, m = m, n
    rows = draw(st.integers(1, 12))
    groups = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = np.zeros((rows, groups * m), dtype=np.float16)
    for i in range(rows):
        for g in range(groups):
            count = rng.integers(0, n + 1)
            pos = rng.choice(m, size=count, replace=False)
            a[i, g * m + pos] = rng.standard_normal(count).astype(np.float16) + 2.0
    return a, n, m


class TestNMProperties:
    @given(nm_matrix())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_pattern(self, case):
        a, n, m = case
        assert satisfies_nm(a, n, m)
        vals, pos = compress_nm(a, n, m)
        np.testing.assert_array_equal(expand_nm(vals, pos, a.shape[1], n, m), a)

    @given(nm_matrix())
    @settings(max_examples=60, deadline=None)
    def test_positions_sorted_and_bounded(self, case):
        a, n, m = case
        _, pos = compress_nm(a, n, m)
        assert pos.max(initial=0) < m
        grouped = pos.reshape(a.shape[0], -1, n)
        if n > 1:
            assert np.all(np.diff(grouped, axis=2) > 0)

    @given(nm_matrix())
    @settings(max_examples=40, deadline=None)
    def test_compressed_width(self, case):
        a, n, m = case
        vals, _ = compress_nm(a, n, m)
        assert vals.shape == (a.shape[0], a.shape[1] // m * n)

    @given(nm_matrix())
    @settings(max_examples=40, deadline=None)
    def test_nonzeros_preserved_exactly(self, case):
        a, n, m = case
        vals, _ = compress_nm(a, n, m)
        got = np.sort(vals[vals != 0].astype(np.float32))
        want = np.sort(a[a != 0].astype(np.float32))
        np.testing.assert_array_equal(got, want)

    @given(st.integers(1, 8), st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_violating_matrix_always_rejected(self, rows, groups):
        # A fully dense matrix violates every n < m pattern.
        a = np.ones((rows, groups * 4), dtype=np.float16)
        assert not satisfies_nm(a, 2, 4)
        try:
            compress_nm(a, 2, 4)
        except ValueError:
            return
        raise AssertionError("compress_nm accepted a violating matrix")
