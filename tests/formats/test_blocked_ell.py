"""Tests for the Blocked-ELL format and its library-kernel model."""

import numpy as np
import pytest

from repro.baselines import blocked_ell_spmm, cublas_hgemm
from repro.formats import BlockedEllMatrix
from tests.conftest import random_vector_sparse


class TestFormat:
    def test_roundtrip(self, rng):
        dense = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        ell = BlockedEllMatrix.from_dense(dense, bs=32)
        np.testing.assert_array_equal(ell.to_dense(), dense)

    def test_rows_padded_to_longest(self):
        dense = np.zeros((64, 128), dtype=np.float16)
        dense[0, :96] = 1.0   # block-row 0 uses 3 block-columns
        dense[32, 0] = 1.0    # block-row 1 uses 1
        ell = BlockedEllMatrix.from_dense(dense, bs=32)
        assert ell.ell_cols == 3
        assert ell.real_blocks == 4
        assert ell.stored_blocks == 6  # 2 rows x 3 slots

    def test_padding_overhead_clustered_vs_scattered(self, rng):
        # One dense 32x32 cluster: overhead ~1.  Scattered scalars: huge.
        clustered = np.zeros((64, 128), dtype=np.float16)
        clustered[:32, :32] = 1.0
        scattered = np.zeros((64, 128), dtype=np.float16)
        scattered[::16, ::16] = 1.0
        e1 = BlockedEllMatrix.from_dense(clustered, bs=32)
        e2 = BlockedEllMatrix.from_dense(scattered, bs=32)
        # The empty second block-row still stores one padding slot -> 2x.
        assert e1.padding_overhead() == pytest.approx(2.0)
        assert e2.padding_overhead() > 50

    def test_empty_matrix(self):
        ell = BlockedEllMatrix.from_dense(np.zeros((32, 32), np.float16), bs=32)
        assert ell.real_blocks == 0
        assert ell.padding_overhead() == 1.0
        np.testing.assert_array_equal(ell.to_dense(), np.zeros((32, 32), np.float16))

    def test_rejects_untileable(self):
        with pytest.raises(ValueError):
            BlockedEllMatrix.from_dense(np.zeros((40, 32), np.float16), bs=32)

    def test_spmm_reference(self, rng):
        dense = random_vector_sparse(64, 64, v=4, sparsity=0.8, rng=rng)
        ell = BlockedEllMatrix.from_dense(dense, bs=16)
        b = rng.standard_normal((64, 32)).astype(np.float16)
        np.testing.assert_allclose(
            ell.spmm_reference(b),
            dense.astype(np.float32) @ b.astype(np.float32),
            rtol=1e-3,
            atol=1e-2,
        )


class TestKernel:
    def test_functional(self, rng):
        a = random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng)
        b = rng.standard_normal((128, 64)).astype(np.float16)
        res = blocked_ell_spmm(a, b, bs=32)
        np.testing.assert_allclose(
            res.c, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-3, atol=1e-2
        )

    def test_unstructured_sparsity_defeats_it(self, rng):
        # At 90% unstructured vector sparsity every block-row stays full:
        # the kernel does dense work and loses to cuBLAS — the reason the
        # paper's comparison set skips this library path.
        a = random_vector_sparse(1024, 1024, v=8, sparsity=0.9, rng=rng)
        b = np.zeros((1024, 512), np.float16)
        ell = BlockedEllMatrix.from_dense(a, 32)
        assert ell.ell_cols == 1024 // 32  # zero compression
        d_ell = blocked_ell_spmm(ell, b, want_output=False).profile.duration_us
        d_cu = cublas_hgemm(a, b, want_output=False).profile.duration_us
        assert d_ell > d_cu

    def test_clustered_sparsity_wins(self, rng):
        # Block-diagonal: 1/8 of the blocks populated -> beats dense.
        a = np.zeros((1024, 1024), dtype=np.float16)
        for i in range(0, 1024, 256):
            a[i : i + 32, i : i + 32] = rng.standard_normal((32, 32)).astype(np.float16)
        b = np.zeros((1024, 512), np.float16)
        d_ell = blocked_ell_spmm(a, b, bs=32, want_output=False).profile.duration_us
        d_cu = cublas_hgemm(a, b, want_output=False).profile.duration_us
        assert d_ell < d_cu

    def test_duration_tracks_ell_cols_not_nnz(self, rng):
        # Two matrices, same ell_cols, very different nnz: same Duration.
        a1 = np.zeros((256, 256), dtype=np.float16)
        a1[:, :32] = 1.0  # every block-row: 1 full block
        a2 = np.zeros((256, 256), dtype=np.float16)
        a2[::32, :32] = 1.0  # every block-row: 1 nearly-empty block
        b = np.zeros((256, 128), np.float16)
        d1 = blocked_ell_spmm(a1, b, bs=32, want_output=False).profile.duration_us
        d2 = blocked_ell_spmm(a2, b, bs=32, want_output=False).profile.duration_us
        assert d1 == pytest.approx(d2, rel=0.01)
