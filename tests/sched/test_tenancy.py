"""Multi-tenant admission: priority classes, token buckets, throttling."""

import pytest

from repro.sched import (
    PRIORITY_CLASSES,
    PRIORITY_WEIGHTS,
    AdmissionController,
    TenantConfig,
    ThrottledError,
    TokenBucket,
)


class TestTenantConfig:
    def test_default_is_batch_unlimited(self):
        cfg = TenantConfig(name="t")
        assert cfg.priority == "batch"
        assert cfg.rate_per_s is None
        assert cfg.weight == PRIORITY_WEIGHTS["batch"]

    def test_priority_weights_order_most_urgent_first(self):
        weights = [PRIORITY_WEIGHTS[c] for c in PRIORITY_CLASSES]
        assert weights == sorted(weights)
        assert PRIORITY_WEIGHTS["interactive"] < PRIORITY_WEIGHTS["batch"]
        assert PRIORITY_WEIGHTS["batch"] < PRIORITY_WEIGHTS["best_effort"]

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            TenantConfig(name="t", priority="platinum")

    def test_bad_rate_and_burst_rejected(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            TenantConfig(name="t", rate_per_s=0.0)
        with pytest.raises(ValueError, match="burst"):
            TenantConfig(name="t", rate_per_s=1.0, burst=0.5)


class TestTokenBucket:
    def test_burst_then_refusal(self):
        tb = TokenBucket(rate_per_s=1.0, burst=2)
        assert tb.try_acquire(now=0.0)
        assert tb.try_acquire(now=0.0)
        assert not tb.try_acquire(now=0.0)

    def test_refills_at_rate(self):
        tb = TokenBucket(rate_per_s=10.0, burst=1)
        assert tb.try_acquire(now=0.0)
        assert not tb.try_acquire(now=0.05)  # 0.5 tokens back
        assert tb.try_acquire(now=0.1)  # full token back

    def test_refill_caps_at_burst(self):
        tb = TokenBucket(rate_per_s=100.0, burst=2)
        assert tb.try_acquire(now=0.0)
        assert tb.tokens <= 2.0
        tb.try_acquire(now=1000.0)
        assert tb.tokens <= 2.0

    def test_retry_after_names_the_wait(self):
        tb = TokenBucket(rate_per_s=2.0, burst=1)
        assert tb.retry_after(now=0.0) == 0.0
        assert tb.try_acquire(now=0.0)
        assert tb.retry_after(now=0.0) == pytest.approx(0.5)

    def test_clock_going_backwards_does_not_mint_tokens(self):
        tb = TokenBucket(rate_per_s=1.0, burst=1)
        assert tb.try_acquire(now=10.0)
        assert not tb.try_acquire(now=5.0)  # earlier now: no refill
        before = tb.tokens
        tb.retry_after(now=5.0)
        assert tb.tokens == before

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0)


class TestAdmissionController:
    def test_unregistered_tenant_uses_default_unlimited(self):
        adm = AdmissionController()
        for i in range(100):
            adm.admit("anyone", now=0.0)  # never raises
        assert adm.throttled == 0

    def test_rate_limited_tenant_sheds_with_typed_error(self):
        adm = AdmissionController().configure("t", rate_per_s=1.0, burst=2)
        adm.admit("t", now=0.0)
        adm.admit("t", now=0.0)
        with pytest.raises(ThrottledError) as exc_info:
            adm.admit("t", now=0.0)
        assert exc_info.value.tenant == "t"
        assert exc_info.value.retry_after_s > 0
        assert adm.throttled == 1
        assert adm.throttled_by_tenant() == {"t": 1}

    def test_throttle_counts_are_per_tenant(self):
        adm = (
            AdmissionController()
            .configure("a", rate_per_s=1.0, burst=1)
            .configure("b", rate_per_s=1.0, burst=1)
        )
        adm.admit("a", now=0.0)
        adm.admit("b", now=0.0)
        for _ in range(2):
            with pytest.raises(ThrottledError):
                adm.admit("a", now=0.0)
        with pytest.raises(ThrottledError):
            adm.admit("b", now=0.0)
        assert adm.throttled_by_tenant() == {"a": 2, "b": 1}
        assert adm.throttled == 3

    def test_reconfigure_rebuilds_the_bucket(self):
        adm = AdmissionController().configure("t", rate_per_s=1.0, burst=1)
        adm.admit("t", now=0.0)
        with pytest.raises(ThrottledError):
            adm.admit("t", now=0.0)
        adm.configure("t", rate_per_s=1.0, burst=5)  # fresh, larger bucket
        for _ in range(5):
            adm.admit("t", now=0.0)

    def test_weight_lookup_follows_config(self):
        adm = AdmissionController().configure("ui", priority="interactive")
        assert adm.weight("ui") == PRIORITY_WEIGHTS["interactive"]
        assert adm.weight("other") == PRIORITY_WEIGHTS["batch"]

    def test_custom_default_config(self):
        adm = AdmissionController(
            default=TenantConfig(name="default", priority="best_effort")
        )
        assert adm.weight("stranger") == PRIORITY_WEIGHTS["best_effort"]
