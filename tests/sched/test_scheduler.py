"""Scheduler policy object: EDF due times, promotion, sort-key property."""

import os

import numpy as np
import pytest

from repro.sched import (
    PRIORITY_WEIGHTS,
    AdmissionController,
    CostModel,
    Scheduler,
    ThrottledError,
    group_sort_key,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


class TestGroupSortKey:
    def test_priority_class_dominates_deadlines(self):
        # A best-effort group with an imminent deadline still sorts after
        # an interactive group with no deadline at all.
        urgent_low = group_sort_key(2, min_deadline_t=0.001, fallback_t=99.0)
        relaxed_high = group_sort_key(0, min_deadline_t=None, fallback_t=50.0)
        assert relaxed_high < urgent_low

    def test_edf_within_class(self):
        a = group_sort_key(1, min_deadline_t=5.0, fallback_t=99.0)
        b = group_sort_key(1, min_deadline_t=3.0, fallback_t=0.0)
        assert b < a

    def test_deadline_less_groups_fall_back_to_linger_expiry(self):
        a = group_sort_key(1, min_deadline_t=None, fallback_t=2.0)
        b = group_sort_key(1, min_deadline_t=None, fallback_t=4.0)
        assert a < b

    def test_no_priority_inversion_property(self):
        # For any two groups, the lower weight (more urgent class) sorts
        # first regardless of every other field — fuzzed under the CI
        # chaos seeds so the property holds for any timing layout.
        rng = np.random.default_rng(CHAOS_SEED)
        for _ in range(500):
            w1, w2 = rng.integers(0, 3, size=2)
            d1, d2 = rng.uniform(0, 100, size=2)
            f1, f2 = rng.uniform(0, 100, size=2)
            k1 = group_sort_key(int(w1), d1 if rng.random() < 0.5 else None, f1)
            k2 = group_sort_key(int(w2), d2 if rng.random() < 0.5 else None, f2)
            if w1 < w2:
                assert k1 < k2
            elif w2 < w1:
                assert k2 < k1


class TestDueTime:
    def test_no_deadline_is_linger_expiry(self):
        s = Scheduler()
        assert s.due_t(oldest_t=10.0, window_s=0.5, min_deadline_t=None) == 10.5

    def test_deadline_promotes_before_linger(self):
        s = Scheduler(promote_margin_s=0.01)
        due = s.due_t(oldest_t=10.0, window_s=0.5, min_deadline_t=10.2)
        assert due == pytest.approx(10.19)

    def test_late_deadline_keeps_linger(self):
        s = Scheduler(promote_margin_s=0.01)
        assert s.due_t(oldest_t=10.0, window_s=0.1, min_deadline_t=99.0) == 10.1

    def test_edf_disabled_ignores_deadlines(self):
        s = Scheduler(edf=False)
        assert s.due_t(oldest_t=10.0, window_s=0.5, min_deadline_t=10.01) == 10.5

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(promote_margin_s=-0.1)


class TestCounters:
    def test_promotions_accumulate(self):
        s = Scheduler()
        s.note_promoted(2)
        s.note_promoted(0)  # no-op
        s.note_promoted(1)
        assert s.promoted == 3

    def test_admission_passthrough(self):
        adm = AdmissionController().configure(
            "t", priority="interactive", rate_per_s=1.0, burst=1
        )
        s = Scheduler(admission=adm)
        s.admit("t", now=0.0)
        with pytest.raises(ThrottledError):
            s.admit("t", now=0.0)
        assert s.throttled == 1
        assert s.throttled_by_tenant() == {"t": 1}
        assert s.weight("t") == PRIORITY_WEIGHTS["interactive"]

    def test_no_admission_admits_everyone_at_batch_weight(self):
        s = Scheduler()
        s.admit("anyone", now=0.0)
        assert s.throttled == 0
        assert s.weight("anyone") == PRIORITY_WEIGHTS["batch"]


class TestRoutePlanning:
    def test_without_cost_model_order_is_untouched(self):
        s = Scheduler()
        assert s.plan_routes("w", ["jigsaw", "hybrid", "dense"], cols=8) == [
            "jigsaw",
            "hybrid",
            "dense",
        ]

    def test_cost_model_reorders_and_observe_feeds_it(self):
        s = Scheduler(cost_model=CostModel())
        s.observe("w", "hybrid", us=5.0, cols=1)
        s.observe("w", "jigsaw", us=50.0, cols=1)
        assert s.plan_routes("w", ["jigsaw", "hybrid", "dense"], cols=4)[0] == "hybrid"

    def test_single_candidate_skips_planning(self):
        s = Scheduler(cost_model=CostModel())
        assert s.plan_routes("w", ["dense"], cols=8) == ["dense"]
