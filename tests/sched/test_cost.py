"""Learned route costs: EWMA estimators and cost-model planning."""

import pytest

from repro.sched import CostModel, EwmaEstimator


class TestEwmaEstimator:
    def test_first_observation_is_the_value(self):
        est = EwmaEstimator(alpha=0.25)
        assert est.value is None
        assert est.update(8.0) == 8.0
        assert est.count == 1

    def test_smoothing_moves_toward_new_observations(self):
        est = EwmaEstimator(alpha=0.5)
        est.update(10.0)
        assert est.update(20.0) == pytest.approx(15.0)
        assert est.update(20.0) == pytest.approx(17.5)

    def test_alpha_one_tracks_latest(self):
        est = EwmaEstimator(alpha=1.0)
        est.update(10.0)
        assert est.update(3.0) == 3.0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)


class TestCostModelObservation:
    def test_estimate_scales_with_cols(self):
        cm = CostModel()
        cm.observe("w", "jigsaw", us=100.0, cols=10)  # 10 us/col
        assert cm.estimate_us("w", "jigsaw", cols=3) == pytest.approx(30.0)

    def test_unmeasured_route_has_no_estimate(self):
        cm = CostModel()
        assert cm.estimate_us("w", "jigsaw", cols=8) is None

    def test_zero_col_observation_ignored(self):
        cm = CostModel()
        cm.observe("w", "jigsaw", us=100.0, cols=0)
        assert cm.samples("w", "jigsaw") == 0

    def test_min_samples_gate(self):
        cm = CostModel(min_samples=2)
        cm.observe("w", "jigsaw", us=10.0, cols=1)
        assert cm.estimate_us("w", "jigsaw", cols=1) is None
        cm.observe("w", "jigsaw", us=10.0, cols=1)
        assert cm.estimate_us("w", "jigsaw", cols=1) == pytest.approx(10.0)

    def test_snapshot_is_per_matrix_per_route(self):
        cm = CostModel()
        cm.observe("a", "jigsaw", us=10.0, cols=1)
        cm.observe("a", "dense", us=40.0, cols=1)
        cm.observe("b", "hybrid", us=5.0, cols=1)
        snap = cm.snapshot()
        assert snap == {
            "a": {"jigsaw": 10.0, "dense": 40.0},
            "b": {"hybrid": 5.0},
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(min_samples=0)
        with pytest.raises(ValueError):
            CostModel(explore_every=1)


class TestCostModelPlanning:
    CHAIN = ["jigsaw", "hybrid", "dense"]

    def test_cold_start_keeps_static_chain_order(self):
        cm = CostModel()
        assert cm.plan("w", self.CHAIN, cols=8) == self.CHAIN
        # Also when candidates arrive in a different order.
        assert cm.plan("w", ["dense", "jigsaw", "hybrid"], cols=8) == self.CHAIN

    def test_measured_routes_rank_cheapest_first(self):
        cm = CostModel()
        cm.observe("w", "jigsaw", us=50.0, cols=1)
        cm.observe("w", "hybrid", us=10.0, cols=1)
        cm.observe("w", "dense", us=20.0, cols=1)
        assert cm.plan("w", self.CHAIN, cols=4) == ["hybrid", "dense", "jigsaw"]

    def test_unmeasured_routes_sort_after_measured_in_chain_order(self):
        cm = CostModel()
        cm.observe("w", "hybrid", us=10.0, cols=1)
        # hybrid measured -> first; jigsaw/dense unmeasured keep chain order.
        assert cm.plan("w", self.CHAIN, cols=4) == ["hybrid", "jigsaw", "dense"]

    def test_costs_are_per_matrix(self):
        cm = CostModel()
        cm.observe("a", "hybrid", us=1.0, cols=1)
        assert cm.plan("a", self.CHAIN, cols=4)[0] == "hybrid"
        assert cm.plan("b", self.CHAIN, cols=4) == self.CHAIN

    def test_exploration_reprobes_least_sampled_on_cadence(self):
        cm = CostModel(explore_every=3)
        for _ in range(5):
            cm.observe("w", "hybrid", us=1.0, cols=1)
        # Decisions 0..5: every 3rd (n=3) front-runs the least-sampled
        # non-dense route (jigsaw, zero samples) ahead of measured hybrid.
        firsts = [cm.plan("w", self.CHAIN, cols=4)[0] for _ in range(6)]
        assert firsts == ["hybrid", "hybrid", "hybrid", "jigsaw", "hybrid", "hybrid"]

    def test_exploration_never_probes_dense(self):
        cm = CostModel(explore_every=2)
        cm.observe("w", "jigsaw", us=1.0, cols=1)
        cm.observe("w", "hybrid", us=1.0, cols=1)
        for _ in range(10):
            assert cm.plan("w", self.CHAIN, cols=4)[0] != "dense"

    def test_plan_preserves_candidate_set(self):
        cm = CostModel(explore_every=2)
        cm.observe("w", "hybrid", us=1.0, cols=1)
        for _ in range(8):
            assert sorted(cm.plan("w", self.CHAIN, cols=4)) == sorted(self.CHAIN)

    def test_plan_with_restricted_candidates(self):
        # Reorder-failed groups offer only hybrid/dense; the model must
        # never resurrect a route the executor excluded.
        cm = CostModel()
        cm.observe("w", "jigsaw", us=0.1, cols=1)
        assert cm.plan("w", ["hybrid", "dense"], cols=4) == ["hybrid", "dense"]

    def test_default_chain_includes_format_qualified_route(self):
        cm = CostModel()
        chain = list(cm.chain)
        assert chain == ["jigsaw", "compiled", "jigsaw@vnm", "hybrid", "dense"]
        # Cold start over the full chain keeps the static prior order.
        assert cm.plan("w", chain, cols=8) == chain


class TestCostModelRegressions:
    """Pins for the PR 7 bugfix sweep (zero-clamp, tiebreaks, explore)."""

    CHAIN = ["jigsaw", "hybrid", "dense"]

    def test_zero_us_observation_cannot_pin_a_route(self):
        # A clock-granularity 0 us sample used to enter the EWMA
        # verbatim; enough of them converged the estimate to 0 us/col
        # and plan() pinned the route as cheapest forever.
        from repro.sched import MIN_OBSERVED_US

        cm = CostModel(chain=self.CHAIN)
        for _ in range(50):
            cm.observe("w", "hybrid", us=0.0, cols=8)
        est = cm.estimate_us("w", "hybrid", cols=8)
        assert est is not None
        assert est == pytest.approx(MIN_OBSERVED_US)  # 8 cols * (eps / 8 cols)
        # Later real measurements still outweigh the zero readings.
        for _ in range(30):
            cm.observe("w", "hybrid", us=80.0, cols=8)
            cm.observe("w", "jigsaw", us=8.0, cols=8)
        assert cm.plan("w", self.CHAIN, cols=8)[0] == "jigsaw"

    def test_degenerate_observations_are_dropped(self):
        cm = CostModel()
        cm.observe("w", "jigsaw", us=-1.0, cols=8)
        cm.observe("w", "jigsaw", us=float("nan"), cols=8)
        cm.observe("w", "jigsaw", us=float("inf"), cols=8)
        assert cm.samples("w", "jigsaw") == 0

    def test_unknown_routes_tiebreak_by_name_not_candidate_order(self):
        # Routes beyond the static chain share the sentinel chain index;
        # they used to keep whatever order the caller's candidate list
        # had (sorted() stability), so two executors offering the same
        # set in different orders planned different chains.
        cm = CostModel(chain=self.CHAIN)
        cands = [*self.CHAIN, "jigsaw@zeta", "jigsaw@alpha"]
        expected = [*self.CHAIN, "jigsaw@alpha", "jigsaw@zeta"]
        assert cm.plan("w", cands, cols=4) == expected
        assert cm.plan("w", list(reversed(cands)), cols=4) == expected

    def test_exploration_excludes_dense_by_base_name(self):
        # The probe filter used to compare the literal route name, so a
        # format-qualified terminal route ("dense@x", zero samples) was
        # always the least-sampled and got front-run on every cadence.
        cm = CostModel(explore_every=2, chain=self.CHAIN)
        cands = ["jigsaw", "hybrid", "dense@alt", "dense"]
        for _ in range(6):
            cm.observe("w", "jigsaw", us=1.0, cols=1)
            cm.observe("w", "hybrid", us=2.0, cols=1)
        for _ in range(10):
            first = cm.plan("w", cands, cols=4)[0]
            assert first not in ("dense", "dense@alt")


class TestVersionQualifiedMatrices:
    """Learned costs survive dynamic-sparsity version bumps: estimators
    key on the base matrix name, with any ``@v<N>`` qualifier stripped."""

    def test_base_matrix_strips_version_qualifier(self):
        from repro.sched import base_matrix

        assert base_matrix("w@v1") == "w"
        assert base_matrix("w@v12") == "w"
        assert base_matrix("w") == "w"
        # Only a trailing @v<digits> is a version qualifier.
        assert base_matrix("jigsaw@vnm") == "jigsaw@vnm"
        assert base_matrix("w@v1x") == "w@v1x"

    def test_ewma_survives_version_bumps(self):
        cm = CostModel()
        cm.observe("w@v1", "jigsaw", us=100.0, cols=10)
        for name in ("w", "w@v1", "w@v2", "w@v37"):
            assert cm.samples(name, "jigsaw") == 1
            assert cm.estimate_us(name, "jigsaw", cols=5) == pytest.approx(50.0)

    def test_plan_ranks_by_base_name_across_versions(self):
        chain = ["jigsaw", "hybrid", "dense"]
        cm = CostModel(chain=chain)
        for _ in range(5):
            cm.observe("w@v1", "hybrid", us=5.0, cols=8)
            cm.observe("w@v1", "jigsaw", us=50.0, cols=8)
        # A post-update lookup under the new version reuses the history
        # instead of re-probing from the static chain order.
        assert cm.plan("w@v2", chain, cols=8)[0] == "hybrid"

    def test_state_roundtrip_normalizes_versioned_keys(self):
        cm = CostModel()
        cm.observe("w@v3", "jigsaw", us=40.0, cols=4)
        state = cm.export_state()
        assert "w" in state and not any("@v" in k for k in state)
        other = CostModel()
        assert other.import_state(state) == 1
        assert other.estimate_us("w@v9", "jigsaw", cols=4) == pytest.approx(40.0)
