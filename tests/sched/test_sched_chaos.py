"""Chaos drills for the SLO scheduler: injected kernel faults must never
invert priorities, and breakers must keep steering routing even when the
cost model's learned estimate points at a faulting route."""

import os

import numpy as np
import pytest

from repro.faults import OPEN, BreakerBoard, FaultPlan, RetryPolicy
from repro.sched import AdmissionController, CostModel, Scheduler, ThrottledError
from repro.serve import BatchExecutor, PlanRegistry, SpmmRequest
from tests.conftest import random_vector_sparse

#: CI's chaos job sweeps this seed; every test must hold for any value.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


@pytest.fixture()
def registry(rng, tmp_path):
    reg = PlanRegistry(cache_dir=tmp_path)
    reg.register("w0", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    reg.register("w1", random_vector_sparse(64, 128, v=4, sparsity=0.9, rng=rng))
    return reg


def _panel(rng, k=128, n=8):
    return rng.standard_normal((k, n)).astype(np.float16)


def _reference(reg, name, b):
    return reg.matrix(name).astype(np.float32) @ b.astype(np.float32)


def _two_class_scheduler(**kw):
    adm = (
        AdmissionController()
        .configure("ui", priority="interactive")
        .configure("bg", priority="best_effort", **kw)
    )
    return Scheduler(admission=adm, cost_model=CostModel())


class TestNoPriorityInversion:
    def test_interactive_group_launches_before_best_effort_under_faults(
        self, registry, rng
    ):
        # Best-effort traffic is submitted FIRST, so FIFO flush order
        # would run it first; the scheduler must dispatch the interactive
        # group ahead of it even while kernel faults force retries and
        # fallback hops.  One pool worker => batch_stats order is
        # execution order.
        fp = FaultPlan(seed=CHAOS_SEED).add(
            "executor.kernel.jigsaw", probability=0.3
        )
        with BatchExecutor(
            registry,
            max_batch=64,
            batch_window_s=60.0,
            max_workers=1,
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=1e-5),
            sleep=lambda s: None,
            fault_plan=fp,
            scheduler=_two_class_scheduler(),
        ) as ex:
            futures = [
                ex.submit(SpmmRequest("w1", _panel(rng), tenant="bg"))
                for _ in range(4)
            ]
            futures += [
                ex.submit(SpmmRequest("w0", _panel(rng), tenant="ui"))
                for _ in range(4)
            ]
            ex.flush()
            for f in futures:
                assert f.result(timeout=60).c is not None
            batches = ex.batch_stats()
        first_ui = min(i for i, b in enumerate(batches) if b.matrix == "w0")
        first_bg = min(i for i, b in enumerate(batches) if b.matrix == "w1")
        assert first_ui < first_bg
        # The recorded batch weights carry the priority signal.
        assert all(b.weight == 0 for b in batches if b.matrix == "w0")
        assert all(b.weight == 2 for b in batches if b.matrix == "w1")


class TestBreakersStillSteer:
    def test_open_breaker_overrides_cost_model_first_choice(self, registry, rng):
        # The cost model is seeded to believe jigsaw is by far the
        # cheapest route — then every jigsaw launch faults.  The breaker
        # must trip and steer traffic to hybrid regardless of the
        # estimate, and every result must stay correct.
        fp = (
            FaultPlan(seed=CHAOS_SEED)
            .add("executor.kernel.jigsaw", probability=1.0)
            .add("executor.kernel.compiled", probability=1.0)
        )
        sched = Scheduler(cost_model=CostModel())
        sched.observe("w0", "jigsaw", us=0.01, cols=1)  # stale "cheap" estimate
        breakers = BreakerBoard(failure_threshold=2, cooldown_s=600.0)
        with BatchExecutor(
            registry,
            max_batch=4,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=1e-5),
            sleep=lambda s: None,
            breakers=breakers,
            fault_plan=fp,
            scheduler=sched,
        ) as ex:
            for _ in range(3):
                reqs = [SpmmRequest("w0", _panel(rng)) for _ in range(2)]
                for res, req in zip(ex.run(reqs), reqs):
                    assert res.stats.route == "hybrid"
                    np.testing.assert_allclose(
                        res.c,
                        _reference(registry, "w0", req.b),
                        rtol=1e-2,
                        atol=0.1,
                    )
            stats = ex.stats()
        # The router kept planning jigsaw first (its estimate is stale-cheap)...
        assert sched.plan_routes("w0", ["jigsaw", "hybrid", "dense"], 8)[0] == "jigsaw"
        # ...but the breaker opened and the batches ran hybrid anyway.
        assert breakers.get("w0", "jigsaw").state == OPEN
        assert stats.breaker_trips >= 1
        assert stats.route_counts["hybrid"] == 6
        # Hybrid launches fed the model, so it now has a real measurement.
        assert sched.cost_model.samples("w0", "hybrid") > 0


class TestMixedChaos:
    def test_throttled_faulted_mixed_load_serves_all_accepted(self, registry, rng):
        # Two tenants, transient faults on both batched routes, and a
        # tight rate limit on the background tenant: every accepted
        # future must complete with a numerically correct result, and
        # throttles must be typed and folded into the stats.
        fp = (
            FaultPlan(seed=CHAOS_SEED)
            .add("executor.kernel.jigsaw", probability=0.4)
            .add("executor.kernel.hybrid", probability=0.2, count=2)
        )
        with BatchExecutor(
            registry,
            max_batch=8,
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=1e-5),
            sleep=lambda s: None,
            fault_plan=fp,
            scheduler=_two_class_scheduler(rate_per_s=1.0, burst=3),
        ) as ex:
            reqs = [
                SpmmRequest(
                    f"w{i % 2}",
                    _panel(rng),
                    tenant="bg" if i % 2 else "ui",
                )
                for i in range(12)
            ]
            report = ex.submit_many(reqs, on_error="partial")
            ex.flush()
            for i, f in enumerate(report.futures):
                if f is None:
                    continue
                res = f.result(timeout=60)
                np.testing.assert_allclose(
                    res.c,
                    _reference(registry, reqs[i].matrix, reqs[i].b),
                    rtol=1e-2,
                    atol=0.1,
                )
            stats = ex.stats()
        assert report.rejected == 3  # bg burst of 3 admits, 3 more shed
        assert all(isinstance(e, ThrottledError) for _, e in report.errors)
        assert all(e.tenant == "bg" for _, e in report.errors)
        assert stats.throttled == 3
        assert stats.throttled_by_tenant == {"bg": 3}
        assert stats.tenant_counts == {"ui": 6, "bg": 3}
